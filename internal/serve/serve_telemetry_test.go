package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"factorgraph/internal/telemetry"
)

// scrape fetches /metrics through the server and returns the per-name
// totals (label dimensions summed).
func scrape(t *testing.T, srv *Server) map[string]float64 {
	t.Helper()
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics: content-type %q", ct)
	}
	totals, err := telemetry.ParseTextTotals(rec.Body)
	if err != nil {
		t.Fatalf("unparseable exposition: %v", err)
	}
	return totals
}

// TestMetricsAllLayers drives every instrumented subsystem — HTTP routing,
// the engine query/patch/mutation paths, residual flushes, exec rounds, the
// delta overlay and the registry — and asserts each layer's series surface
// on /metrics with non-zero values. The registry is process-global, so the
// assertions are monotone (non-zero), never exact.
func TestMetricsAllLayers(t *testing.T) {
	srv, _ := newTestServer(t, 300, 1500)
	if rec, _ := doJSON(t, srv, "POST", "/v1/graphs", incrementalBody("tele", 400, 2000)); rec.Code != 201 {
		t.Fatalf("register: status %d", rec.Code)
	}

	// Classify (query path + a full propagation on the cold engine).
	if rec, _ := doJSON(t, srv, "POST", "/v1/graphs/tele/classify", `{"nodes":[1,2,3],"top_k":2}`); rec.Code != 200 {
		t.Fatalf("classify: status %d", rec.Code)
	}
	// Label patch (residual flush path).
	if rec, _ := doJSON(t, srv, "PATCH", "/v1/graphs/tele/labels", `{"set":{"7":1,"8":2}}`); rec.Code != 200 {
		t.Fatalf("labels patch: status %d", rec.Code)
	}
	// Edge mutations ending in a forced compaction (delta epoch churn).
	if rec, _ := doJSON(t, srv, "PATCH", "/v1/graphs/tele/edges",
		`{"set":[[1,2],[3,4,0.5]],"remove":[[1,2]],"compact":true}`); rec.Code != 200 {
		t.Fatalf("edges patch: status %d", rec.Code)
	}

	totals := scrape(t, srv)
	for _, key := range []string{
		"fg_http_requests_total",  // serve
		"fg_engine_queries_total", // engine query path
		"fg_engine_label_patches_total",
		"fg_engine_edge_mutations_total",
		"fg_engine_compactions_total",
		"fg_residual_flushes_total",       // residual
		"fg_delta_epochs_published_total", // delta overlay
		"fg_registry_builds_total",        // registry
	} {
		if totals[key] <= 0 {
			t.Errorf("%s = %v, want > 0", key, totals[key])
		}
	}
	// The exec layer counts rounds by schedule plus dense sweeps; which one
	// a given flush uses depends on patch width, so gate on their sum.
	if totals["fg_exec_rounds_total"]+totals["fg_exec_dense_rounds_total"] <= 0 {
		t.Errorf("no exec rounds recorded (tracked=%v dense=%v)",
			totals["fg_exec_rounds_total"], totals["fg_exec_dense_rounds_total"])
	}
	// Latency histograms export _count series; ParseTextTotals folds them
	// under their own names.
	if totals["fg_http_request_duration_seconds_count"] <= 0 {
		t.Errorf("request duration histogram has no observations")
	}
}

// TestMetricsExpositionFormat pins the HELP/TYPE framing on the wire.
func TestMetricsExpositionFormat(t *testing.T) {
	srv, _ := newTestServer(t, 100, 500)
	if rec, _ := doJSON(t, srv, "POST", "/v1/classify", `{"nodes":[0]}`); rec.Code != 200 {
		t.Fatalf("classify: status %d", rec.Code)
	}
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	body := rec.Body.String()
	for _, want := range []string{
		"# HELP fg_http_requests_total",
		"# TYPE fg_http_requests_total counter",
		"# TYPE fg_http_request_duration_seconds histogram",
		`fg_http_requests_total{route="classify"}`,
		`le="+Inf"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestAdminBuild(t *testing.T) {
	srv, _ := newTestServer(t, 100, 500)
	rec, _ := doJSON(t, srv, "GET", "/v1/admin/build", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var b BuildResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &b); err != nil {
		t.Fatal(err)
	}
	if b.GoVersion == "" || b.GOMAXPROCS < 1 || b.NumCPU < 1 {
		t.Errorf("bad build info: %+v", b)
	}
}

// TestClassifyDebugTrace: ?debug=1 returns a per-stage timing breakdown on
// non-streaming classify; without it no stages appear.
func TestClassifyDebugTrace(t *testing.T) {
	srv, _ := newTestServer(t, 300, 1500)
	rec, _ := doJSON(t, srv, "POST", "/v1/classify?debug=1", `{"nodes":[1,2,3],"top_k":2}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var resp ClassifyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Stages) == 0 {
		t.Fatal("debug=1 returned no stages")
	}
	seen := map[string]bool{}
	for _, st := range resp.Stages {
		if st.Us < 0 {
			t.Errorf("stage %s: negative duration %v", st.Stage, st.Us)
		}
		seen[st.Stage] = true
	}
	// A cold non-incremental engine resolves a snapshot and formats it.
	if !seen["resolve"] || !seen["emit"] {
		t.Errorf("stages %v, want resolve and emit present", seen)
	}

	rec, _ = doJSON(t, srv, "POST", "/v1/classify", `{"nodes":[1]}`)
	resp = ClassifyResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Stages) != 0 {
		t.Errorf("stages present without debug=1: %v", resp.Stages)
	}
}

// TestConcurrentScrapeClassifyMutate exercises scrape + classify + label
// and edge mutations concurrently; run under -race this pins the
// lock-freedom claims of the metric handles end to end.
func TestConcurrentScrapeClassifyMutate(t *testing.T) {
	srv, _ := newTestServer(t, 300, 1500)
	if rec, _ := doJSON(t, srv, "POST", "/v1/graphs", incrementalBody("conc", 400, 2000)); rec.Code != 201 {
		t.Fatalf("register: status %d", rec.Code)
	}
	do := func(method, path, body string) int {
		req := httptest.NewRequest(method, path, strings.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		return rec.Code
	}
	const iters = 30
	var wg sync.WaitGroup
	wg.Add(4)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if code := do("POST", "/v1/graphs/conc/classify", `{"nodes":[1,2,3]}`); code != 200 {
				t.Errorf("classify: status %d", code)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			body := fmt.Sprintf(`{"set":{"%d":%d}}`, 10+i, i%3)
			if code := do("PATCH", "/v1/graphs/conc/labels", body); code != 200 {
				t.Errorf("labels: status %d", code)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			body := fmt.Sprintf(`{"set":[[%d,%d]]}`, 20+i, 120+i)
			if code := do("PATCH", "/v1/graphs/conc/edges", body); code != 200 {
				t.Errorf("edges: status %d", code)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if code := do("GET", "/metrics", ""); code != 200 {
				t.Errorf("metrics: status %d", code)
				return
			}
		}
	}()
	wg.Wait()
}
