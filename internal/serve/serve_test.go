package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"factorgraph"
)

// newTestServer plants a graph, builds an engine and wraps it in a Server.
func newTestServer(t *testing.T, n, m int) (*Server, *factorgraph.Engine) {
	t.Helper()
	h := factorgraph.SkewedH(3, 8)
	g, truth, err := factorgraph.Generate(factorgraph.GenerateConfig{
		N: n, M: m, K: 3, H: h, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	seeds, err := factorgraph.SampleSeeds(truth, 3, 0.05, 11)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := factorgraph.NewEngine(g, seeds, 3)
	if err != nil {
		t.Fatal(err)
	}
	return New(eng), eng
}

func doJSON(t *testing.T, srv *Server, method, path, body string) (*httptest.ResponseRecorder, map[string]json.RawMessage) {
	t.Helper()
	var rd *bytes.Reader
	if body == "" {
		rd = bytes.NewReader(nil)
	} else {
		rd = bytes.NewReader([]byte(body))
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	out := map[string]json.RawMessage{}
	if ct := rec.Header().Get("Content-Type"); strings.HasPrefix(ct, "application/json") {
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("%s %s: bad JSON response %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec, out
}

func TestHealthz(t *testing.T) {
	srv, eng := newTestServer(t, 500, 3000)
	rec, _ := doJSON(t, srv, "GET", "/healthz", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var h Health
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	g := eng.Graph()
	if h.Status != "ok" || h.Nodes != g.N || h.Edges != g.M || h.Classes != 3 {
		t.Errorf("bad health: %+v", h)
	}
	if h.Estimations != 1 {
		t.Errorf("health reports %d estimations, want 1", h.Estimations)
	}
}

// TestClassify1000SequentialRequests is the HTTP half of the serving
// acceptance criterion: 1000 sequential /v1/classify requests against a
// cached 100k-edge planted graph, with estimation run exactly once and
// propagation exactly once.
func TestClassify1000SequentialRequests(t *testing.T) {
	srv, eng := newTestServer(t, 20000, 100000)
	for i := 0; i < 1000; i++ {
		node := (i * 41) % eng.Graph().N
		rec, _ := doJSON(t, srv, "POST", "/v1/classify",
			fmt.Sprintf(`{"nodes":[%d],"top_k":2}`, node))
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
		var resp ClassifyResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Count != 1 || resp.Results[0].Node != node || len(resp.Results[0].Top) != 2 {
			t.Fatalf("request %d: bad response %+v", i, resp)
		}
	}
	st := eng.Stats()
	if st.Estimations != 1 {
		t.Errorf("1000 requests ran %d estimations, want 1", st.Estimations)
	}
	if st.Propagations != 1 {
		t.Errorf("1000 requests ran %d propagations, want 1", st.Propagations)
	}
}

func TestClassifyStreamNDJSON(t *testing.T) {
	srv, eng := newTestServer(t, 2000, 12000)
	rec, _ := doJSON(t, srv, "POST", "/v1/classify", `{"top_k":3,"stream":true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(rec.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		var r factorgraph.NodeResult
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		if r.Node != lines {
			t.Fatalf("line %d: node %d out of order", lines, r.Node)
		}
		if len(r.Top) != 3 {
			t.Fatalf("line %d: %d top scores, want 3", lines, len(r.Top))
		}
		lines++
	}
	if lines != eng.Graph().N {
		t.Errorf("streamed %d lines, want %d", lines, eng.Graph().N)
	}

	// A valid zero-record stream still gets the NDJSON content type.
	rec, _ = doJSON(t, srv, "POST", "/v1/classify", `{"nodes":[],"stream":true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("empty stream status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("empty stream content type %q", ct)
	}
	if rec.Body.Len() != 0 {
		t.Errorf("empty stream wrote %d bytes", rec.Body.Len())
	}
}

func TestClassifyValidation(t *testing.T) {
	srv, _ := newTestServer(t, 200, 1000)
	for _, tc := range []struct {
		body string
		code int
	}{
		{`{"nodes":[99999]}`, http.StatusBadRequest},
		{`{"top_k":-1}`, http.StatusBadRequest},
		{`{"extra_seeds":{"abc":1}}`, http.StatusBadRequest},
		{`{"extra_seeds":{"0":99}}`, http.StatusBadRequest},
		{`{"unknown_field":1}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
		{`{"nodes":[99999],"stream":true}`, http.StatusBadRequest}, // validated before first record
		{``, http.StatusOK},                                        // empty body = classify everything
	} {
		rec, out := doJSON(t, srv, "POST", "/v1/classify", tc.body)
		if rec.Code != tc.code {
			t.Errorf("body %q: status %d, want %d (%s)", tc.body, rec.Code, tc.code, rec.Body.String())
		}
		if tc.code != http.StatusOK {
			if _, ok := out["error"]; !ok {
				t.Errorf("body %q: error response missing error field", tc.body)
			}
		}
	}
}

func TestClassifyExtraSeedsOverHTTP(t *testing.T) {
	srv, eng := newTestServer(t, 500, 3000)
	node := -1
	for i, c := range eng.Seeds() {
		if c == factorgraph.Unlabeled {
			node = i
			break
		}
	}
	rec, _ := doJSON(t, srv, "POST", "/v1/classify",
		fmt.Sprintf(`{"nodes":[%d],"extra_seeds":{"%d":2}}`, node, node))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp ClassifyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].Label != 2 {
		t.Errorf("what-if label = %d, want 2", resp.Results[0].Label)
	}
	if eng.Seeds()[node] != factorgraph.Unlabeled {
		t.Error("extra seed persisted in engine")
	}
}

func TestEstimateEndpoint(t *testing.T) {
	srv, eng := newTestServer(t, 500, 3000)
	rec, _ := doJSON(t, srv, "POST", "/v1/estimate", `{"method":"mce"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp EstimateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Method != "MCE" || len(resp.H) != 3 || len(resp.H[0]) != 3 {
		t.Errorf("bad estimate response: %+v", resp)
	}
	if resp.Applied {
		t.Error("apply=false reported applied")
	}
	if eng.Estimate().Method != "DCEr" {
		t.Error("non-apply estimate mutated the engine")
	}

	rec, _ = doJSON(t, srv, "POST", "/v1/estimate", `{"method":"mce","apply":true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("apply status %d: %s", rec.Code, rec.Body.String())
	}
	if eng.Estimate().Method != "MCE" {
		t.Errorf("apply did not install H: method %q", eng.Estimate().Method)
	}

	rec, _ = doJSON(t, srv, "POST", "/v1/estimate", `{"method":"nope"}`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown method: status %d", rec.Code)
	}

	// Estimator names are case-insensitive across all entry points.
	rec, _ = doJSON(t, srv, "POST", "/v1/estimate", `{"method":"DCEr"}`)
	if rec.Code != http.StatusOK {
		t.Errorf("mixed-case method: status %d: %s", rec.Code, rec.Body.String())
	}

	// A negative lmax must be a clean error, not a handler panic.
	rec, _ = doJSON(t, srv, "POST", "/v1/estimate", `{"lmax":-1}`)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("negative lmax: status %d, want 422 (%s)", rec.Code, rec.Body.String())
	}

	// Options on estimators that take none are rejected, not ignored.
	rec, _ = doJSON(t, srv, "POST", "/v1/estimate", `{"method":"mce","lambda":2}`)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("mce with options: status %d, want 422 (%s)", rec.Code, rec.Body.String())
	}
}

func TestLabelsGetAndPatch(t *testing.T) {
	srv, eng := newTestServer(t, 500, 3000)
	rec, _ := doJSON(t, srv, "GET", "/v1/labels", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var lr LabelsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &lr); err != nil {
		t.Fatal(err)
	}
	if lr.Count == 0 || len(lr.Labels) != lr.Count {
		t.Errorf("bad labels response: count=%d len=%d", lr.Count, len(lr.Labels))
	}

	node := -1
	for i, c := range eng.Seeds() {
		if c == factorgraph.Unlabeled {
			node = i
			break
		}
	}
	rec, _ = doJSON(t, srv, "PATCH", "/v1/labels",
		fmt.Sprintf(`{"set":{"%d":1}}`, node))
	if rec.Code != http.StatusOK {
		t.Fatalf("patch status %d: %s", rec.Code, rec.Body.String())
	}
	var pr LabelsPatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Labeled != lr.Count+1 {
		t.Errorf("labeled = %d, want %d", pr.Labeled, lr.Count+1)
	}
	if eng.Seeds()[node] != 1 {
		t.Error("patch did not apply")
	}

	rec, _ = doJSON(t, srv, "PATCH", "/v1/labels",
		fmt.Sprintf(`{"remove":[%d]}`, node))
	if rec.Code != http.StatusOK {
		t.Fatalf("remove status %d: %s", rec.Code, rec.Body.String())
	}
	if eng.Seeds()[node] != factorgraph.Unlabeled {
		t.Error("remove did not apply")
	}

	// Validation.
	for _, body := range []string{
		`{}`, `{"set":{"abc":1}}`, `{"set":{"0":9}}`, `{"remove":[-4]}`,
	} {
		rec, _ = doJSON(t, srv, "PATCH", "/v1/labels", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("patch %q: status %d, want 400", body, rec.Code)
		}
	}

	// Reestimate after updates.
	before := eng.Stats().Estimations
	rec, _ = doJSON(t, srv, "PATCH", "/v1/labels",
		fmt.Sprintf(`{"set":{"%d":1},"reestimate":true}`, node))
	if rec.Code != http.StatusOK {
		t.Fatalf("reestimate status %d: %s", rec.Code, rec.Body.String())
	}
	if got := eng.Stats().Estimations; got != before+1 {
		t.Errorf("reestimate ran %d estimations, want %d", got, before+1)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	srv, _ := newTestServer(t, 200, 1000)
	rec, _ := doJSON(t, srv, "DELETE", "/v1/classify", "")
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("DELETE /v1/classify: status %d, want 405", rec.Code)
	}
	rec, _ = doJSON(t, srv, "GET", "/nope", "")
	if rec.Code != http.StatusNotFound {
		t.Errorf("GET /nope: status %d, want 404", rec.Code)
	}
}

// TestConcurrentHTTP hammers the server with parallel classify and patch
// requests; run with -race to exercise the engine's locking through the
// full HTTP stack.
func TestConcurrentHTTP(t *testing.T) {
	srv, _ := newTestServer(t, 1000, 8000)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	const goros = 8
	var wg sync.WaitGroup
	errc := make(chan error, goros*2)
	for g := 0; g < goros; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				body := fmt.Sprintf(`{"nodes":[%d],"top_k":2}`, (g*100+i)%1000)
				resp, err := http.Post(ts.URL+"/v1/classify", "application/json", strings.NewReader(body))
				if err != nil {
					errc <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("classify status %d", resp.StatusCode)
					return
				}
			}
		}(g)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := &http.Client{}
			for i := 0; i < 10; i++ {
				node := (g*50 + i) % 1000
				body := fmt.Sprintf(`{"set":{"%d":%d}}`, node, i%3)
				req, err := http.NewRequest("PATCH", ts.URL+"/v1/labels", strings.NewReader(body))
				if err != nil {
					errc <- err
					return
				}
				resp, err := client.Do(req)
				if err != nil {
					errc <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("patch status %d", resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
