package serve

import (
	"log/slog"
	"net/http"
	"time"

	"factorgraph/internal/telemetry"
)

// HTTP-layer metric handles. Every route is wrapped by (*Server).route,
// which owns the request counter, latency histogram and error counters for
// that route; the handles live in a routeMetrics bundle created once at
// registration (the hot path never touches the registry map). Legacy
// single-graph aliases share the canonical route's series — the registry
// dedups identical (name, labels) registrations — so fg_http_requests_total
// {route="classify"} counts both /v1/classify and /v1/graphs/{name}/classify.
var (
	httpInFlight = telemetry.Default().Gauge("fg_http_in_flight",
		"Requests currently being served.")

	mNDJSONRecords = telemetry.Default().Counter("fg_http_ndjson_records_total",
		"NDJSON records written on streaming classify responses.")
	mNDJSONFlushes = telemetry.Default().Counter("fg_http_ndjson_flushes_total",
		"Explicit flushes of streaming classify responses.")
	mNDJSONSlowFlushes = telemetry.Default().Counter("fg_http_ndjson_slow_flushes_total",
		"Flushes slower than the backpressure threshold (the adaptive interval doubled).")
	hNDJSONFlush = telemetry.Default().Histogram("fg_http_ndjson_flush_seconds",
		"Streaming flush duration (gzip flush + ResponseWriter flush).", telemetry.MicroBuckets)
)

// routeMetrics bundles the per-route handles; one bundle per route name,
// resolved at mux registration.
type routeMetrics struct {
	requests *telemetry.Counter
	err4xx   *telemetry.Counter
	err5xx   *telemetry.Counter
	latency  *telemetry.Histogram
}

func newRouteMetrics(route string) *routeMetrics {
	ls := telemetry.Labels{"route": route}
	return &routeMetrics{
		requests: telemetry.Default().Counter("fg_http_requests_total",
			"HTTP requests served, by route.", ls),
		err4xx: telemetry.Default().Counter("fg_http_errors_total",
			"HTTP error responses, by route and status class.",
			telemetry.Labels{"route": route, "class": "4xx"}),
		err5xx: telemetry.Default().Counter("fg_http_errors_total",
			"HTTP error responses, by route and status class.",
			telemetry.Labels{"route": route, "class": "5xx"}),
		latency: telemetry.Default().Histogram("fg_http_request_duration_seconds",
			"Request duration, by route.", nil, ls),
	}
}

// statusWriter records the response status for metrics and access logs. It
// forwards Flush — the streaming classify handler type-asserts http.Flusher
// on the writer it receives, so losing the interface here would silently
// disable incremental delivery. exemplar carries the captured trace id (hex)
// back from withEngine to the route middleware, which attaches it to the
// route latency histogram as an OpenMetrics exemplar.
type statusWriter struct {
	http.ResponseWriter
	status   int
	exemplar string
}

func (sw *statusWriter) WriteHeader(status int) {
	if sw.status == 0 {
		sw.status = status
	}
	sw.ResponseWriter.WriteHeader(status)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// route registers pattern on the mux wrapped in the telemetry middleware:
// request count, latency, error class and the in-flight gauge, plus a
// debug-level access log line when the server has a logger.
func (s *Server) route(pattern, name string, h http.HandlerFunc) {
	rm := newRouteMetrics(name)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		httpInFlight.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		httpInFlight.Add(-1)
		dur := time.Since(start)
		status := sw.status
		if status == 0 {
			status = http.StatusOK // handler wrote nothing: implicit 200
		}
		rm.requests.Inc()
		if sw.exemplar != "" {
			rm.latency.ObserveExemplar(dur.Seconds(), sw.exemplar)
		} else {
			rm.latency.Observe(dur.Seconds())
		}
		switch {
		case status >= 500:
			rm.err5xx.Inc()
		case status >= 400:
			rm.err4xx.Inc()
		}
		if s.log != nil {
			s.log.Debug("http request",
				slog.String("route", name),
				slog.String("method", r.Method),
				slog.String("graph", r.PathValue("name")),
				slog.Int("status", status),
				slog.Duration("duration", dur),
			)
		}
	})
}
