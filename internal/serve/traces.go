package serve

import (
	"net/http"
	"sort"
	"time"

	"factorgraph/internal/telemetry"
)

// This file is the read side of the tracing subsystem: GET /v1/admin/traces
// serves the bounded in-process trace ring (summaries, or one full span
// tree via ?id=<32-hex trace id>, the same id the /metrics exemplars name),
// and GET /v1/admin/tenants serves the per-graph cost report rolled up from
// request-attributed work.

// handleTraces serves GET /v1/admin/traces[?id=]: without ?id the retained
// trace summaries (newest first) plus the sampler and ring configuration;
// with ?id the named trace's full span tree — a 404 means the trace was
// never captured or has been evicted from the ring.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if idStr := r.URL.Query().Get("id"); idStr != "" {
		id, ok := telemetry.ParseTraceID(idStr)
		if !ok {
			writeError(w, http.StatusBadRequest, "invalid trace id %q (want 32 hex digits)", idStr)
			return
		}
		st, ok := s.rec.traces.Get(id)
		if !ok {
			writeError(w, http.StatusNotFound, "trace %s is not retained (never sampled, or evicted)", idStr)
			return
		}
		writeJSON(w, http.StatusOK, traceDetail(st))
		return
	}
	snap := s.rec.traces.Snapshot()
	resp := TracesResponse{
		SampleRate: s.rec.sampler.Rate(),
		Capacity:   s.rec.traces.Capacity(),
		Count:      len(snap),
		Traces:     make([]TraceSummary, 0, len(snap)),
	}
	for _, st := range snap {
		resp.Traces = append(resp.Traces, traceSummary(st))
	}
	writeJSON(w, http.StatusOK, resp)
}

func traceSummary(st telemetry.StoredTrace) TraceSummary {
	return TraceSummary{
		TraceID:    st.ID.String(),
		Graph:      st.Graph,
		Kind:       st.Kind,
		Time:       st.Start.UTC().Format(time.RFC3339Nano),
		DurationUs: float64(st.Duration) / float64(time.Microsecond),
		Status:     st.Status,
		Reason:     st.Reason,
		SpanCount:  len(st.Spans),
		Depth:      spanTreeDepth(st.Spans),
		Remote:     !st.RemoteParent.IsZero(),
	}
}

func traceDetail(st telemetry.StoredTrace) TraceDetail {
	d := TraceDetail{
		TraceSummary: traceSummary(st),
		RootSpanID:   st.Root.String(),
		Cost: CostWire{
			Pushes:          st.Cost.Pushes,
			EdgesTraversed:  st.Cost.EdgesTraversed,
			RowsCloned:      st.Cost.RowsCloned,
			FlushSeconds:    st.Cost.FlushSeconds,
			LockWaitSeconds: st.Cost.LockWaitSeconds,
		},
		Spans: make([]SpanWire, 0, len(st.Spans)),
	}
	if !st.RemoteParent.IsZero() {
		d.RemoteParentID = st.RemoteParent.String()
	}
	for _, sp := range st.Spans {
		d.Spans = append(d.Spans, SpanWire{
			Name:       sp.Name,
			SpanID:     sp.ID.String(),
			ParentID:   sp.Parent.String(),
			StartUs:    float64(sp.Start) / float64(time.Microsecond),
			DurationUs: float64(sp.Dur) / float64(time.Microsecond),
		})
	}
	return d
}

// spanTreeDepth is the longest parent chain within the stored tree (the
// root request span counts as depth 1; links leaving the tree — the remote
// parent — do not). A chain longer than the span count means a cycle from
// corrupted input; the walk bails rather than spinning.
func spanTreeDepth(spans []telemetry.Span) int {
	parent := make(map[telemetry.SpanID]telemetry.SpanID, len(spans))
	for _, sp := range spans {
		parent[sp.ID] = sp.Parent
	}
	max := 0
	for _, sp := range spans {
		depth := 0
		for id := sp.ID; ; {
			p, ok := parent[id]
			if !ok || depth > len(spans) {
				break
			}
			depth++
			id = p
		}
		if depth > max {
			max = depth
		}
	}
	return max
}

// handleTenants serves GET /v1/admin/tenants: the per-graph cost report —
// request counts and the request-attributed work (pushes, edges traversed,
// rows cloned, flush and lock-wait time) accumulated since the graph's
// series were created, plus each graph's share of the total work. The
// report iterates snapshots of the live series without resolving, so
// reading it never creates or resurrects a deleted graph's series.
func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	acc := make(map[string]*TenantCost)
	get := func(graph string) *TenantCost {
		tc, ok := acc[graph]
		if !ok {
			tc = &TenantCost{Graph: graph}
			acc[graph] = tc
		}
		return tc
	}
	s.rec.requests.Each(func(g string, c *telemetry.Counter) { get(g).Requests = c.Value() })
	s.rec.costPushes.Each(func(g string, c *telemetry.Counter) { get(g).Pushes = c.Value() })
	s.rec.costEdges.Each(func(g string, c *telemetry.Counter) { get(g).EdgesTraversed = c.Value() })
	s.rec.costRows.Each(func(g string, c *telemetry.Counter) { get(g).RowsCloned = c.Value() })
	s.rec.costFlush.Each(func(g string, c *telemetry.FloatCounter) { get(g).FlushSeconds = c.Value() })
	s.rec.costLockWait.Each(func(g string, c *telemetry.FloatCounter) { get(g).LockWaitSeconds = c.Value() })

	resp := TenantsResponse{Tenants: make([]TenantCost, 0, len(acc))}
	var totalWork int64
	for _, tc := range acc {
		tc.WorkUnits = tc.Pushes + tc.EdgesTraversed + tc.RowsCloned
		totalWork += tc.WorkUnits
		resp.Tenants = append(resp.Tenants, *tc)
	}
	for i := range resp.Tenants {
		if totalWork > 0 {
			resp.Tenants[i].CostShare = float64(resp.Tenants[i].WorkUnits) / float64(totalWork)
		}
	}
	// Most expensive tenant first; ties (and all-idle reports) by name so
	// the order is stable for scripts.
	sort.Slice(resp.Tenants, func(i, j int) bool {
		if resp.Tenants[i].WorkUnits != resp.Tenants[j].WorkUnits {
			return resp.Tenants[i].WorkUnits > resp.Tenants[j].WorkUnits
		}
		return resp.Tenants[i].Graph < resp.Tenants[j].Graph
	})
	resp.Count = len(resp.Tenants)
	resp.TotalWorkUnits = totalWork
	writeJSON(w, http.StatusOK, resp)
}
