package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"factorgraph/internal/telemetry"
)

// TestTraceEndToEnd is the tracing acceptance walk: a classify carrying a
// client traceparent is head-sampled, its span tree lands in the trace
// store under the client's trace id, the latency histogram emits an
// exemplar pointing at that id, and the per-tenant cost series reconcile
// with the engine's own residual work counters.
func TestTraceEndToEnd(t *testing.T) {
	srv := newMultiServer(0, Options{TraceSampleRate: 1})
	rec, _ := doJSON(t, srv, "POST", "/v1/graphs", incrementalBody("tracee2e", 200, 1000))
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: status %d", rec.Code)
	}
	classifyGraph(t, srv, "tracee2e") // warm: build + resolve off the measured path

	// The client mints a trace context but leaves it UNSAMPLED (flags 00):
	// the server's head sampler owns the verdict, exactly like loadgen.
	tid := telemetry.NewTraceID()
	parent := telemetry.NewSpanID()
	req := httptest.NewRequest("POST", "/v1/graphs/tracee2e/classify",
		strings.NewReader(`{"nodes":[0,1,2],"top_k":2}`))
	req.Header.Set("traceparent", telemetry.Traceparent(tid, parent, false))
	hrec := httptest.NewRecorder()
	srv.ServeHTTP(hrec, req)
	if hrec.Code != http.StatusOK {
		t.Fatalf("classify: status %d: %s", hrec.Code, hrec.Body.String())
	}

	// The response traceparent proves propagation: same trace id, the
	// server's root span (not our parent), and the sampled flag set.
	rtid, rsid, rsampled, ok := telemetry.ParseTraceparent(hrec.Header().Get("traceparent"))
	if !ok {
		t.Fatalf("response traceparent %q does not parse", hrec.Header().Get("traceparent"))
	}
	if rtid != tid {
		t.Errorf("response trace id %s, want %s (context not propagated)", rtid, tid)
	}
	if rsid == parent {
		t.Errorf("response parent span id %s echoes ours — no server span minted", rsid)
	}
	if !rsampled {
		t.Errorf("rate-1 sampler left the response unsampled")
	}

	// The stored trace resolves by the client's id and spans every layer:
	// serve root (the kind), the engine stage, and the residual/exec tier.
	drec, _ := doJSON(t, srv, "GET", "/v1/admin/traces?id="+tid.String(), "")
	if drec.Code != http.StatusOK {
		t.Fatalf("traces?id=: status %d: %s", drec.Code, drec.Body.String())
	}
	var detail TraceDetail
	if err := json.Unmarshal(drec.Body.Bytes(), &detail); err != nil {
		t.Fatal(err)
	}
	if detail.TraceID != tid.String() || detail.Graph != "tracee2e" || detail.Kind != "classify" {
		t.Errorf("stored trace = %s/%s/%s, want %s/tracee2e/classify",
			detail.TraceID, detail.Graph, detail.Kind, tid)
	}
	if !detail.Remote || detail.RemoteParentID != parent.String() {
		t.Errorf("remote=%v parent=%s, want remote link to %s", detail.Remote, detail.RemoteParentID, parent)
	}
	if detail.Reason != "head" {
		t.Errorf("capture reason %q, want head", detail.Reason)
	}
	if detail.SpanCount < 4 || detail.Depth < 3 {
		t.Errorf("span tree %d spans deep %d, want ≥4 spans ≥3 deep: %+v",
			detail.SpanCount, detail.Depth, detail.Spans)
	}
	names := map[string]bool{}
	for _, sp := range detail.Spans {
		names[sp.Name] = true
	}
	if !names["classify"] || !names["engine.classify"] {
		t.Errorf("span names %v missing serve/engine layers", names)
	}
	lower := false
	for _, n := range []string{"residual_direct", "overlay_flush", "overlay_cached", "overlay_reroute", "resolve", "emit"} {
		lower = lower || names[n]
	}
	if !lower {
		t.Errorf("span names %v missing the exec/residual layer", names)
	}

	// The per-graph latency histogram carries the exemplar, and the
	// exemplar's id is retrievable from the store — the metrics→trace walk.
	text := rawScrape(t, srv)
	want := `graph="tracee2e"`
	found := ""
	for _, ln := range strings.Split(text, "\n") {
		if strings.HasPrefix(ln, "fg_graph_request_duration_seconds_bucket") &&
			strings.Contains(ln, want) && strings.Contains(ln, `trace_id="`) {
			found = ln
			break
		}
	}
	if found == "" {
		t.Fatalf("no exemplar on tracee2e latency buckets:\n%s", grepLines(text, "tracee2e"))
	}
	exID := found[strings.Index(found, `trace_id="`)+len(`trace_id="`):]
	exID = exID[:strings.Index(exID, `"`)]
	erec, _ := doJSON(t, srv, "GET", "/v1/admin/traces?id="+exID, "")
	if erec.Code != http.StatusOK {
		t.Errorf("exemplar trace %s does not resolve: status %d", exID, erec.Code)
	}

	// Cost reconciliation: a patch burst's per-tenant cost deltas must
	// agree (±5%) with the engine's process-wide residual counters — the
	// attribution is the same work, counted at a different layer.
	base, err := telemetry.ParseTextTotals(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		prec, _ := doJSON(t, srv, "PATCH", "/v1/graphs/tracee2e/labels",
			fmt.Sprintf(`{"set":{"%d":%d}}`, (i*17)%200, i%3))
		if prec.Code != http.StatusOK {
			t.Fatalf("patch %d: status %d: %s", i, prec.Code, prec.Body.String())
		}
	}
	after, err := telemetry.ParseTextTotals(strings.NewReader(rawScrape(t, srv)))
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]string{
		{"fg_graph_cost_pushes_total", "fg_residual_pushes_total"},
		{"fg_graph_cost_edges_traversed_total", "fg_residual_edges_traversed_total"},
	} {
		cost := after[pair[0]] - base[pair[0]]
		engine := after[pair[1]] - base[pair[1]]
		if cost <= 0 || engine <= 0 {
			t.Errorf("%s delta %v vs %s delta %v: burst did no attributable work", pair[0], cost, pair[1], engine)
			continue
		}
		if math.Abs(cost-engine)/engine > 0.05 {
			t.Errorf("%s delta %v diverges >5%% from %s delta %v", pair[0], cost, pair[1], engine)
		}
	}

	// The cost report bills the burst to the tenant.
	trec, _ := doJSON(t, srv, "GET", "/v1/admin/tenants", "")
	if trec.Code != http.StatusOK {
		t.Fatalf("tenants: status %d", trec.Code)
	}
	var tenants TenantsResponse
	if err := json.Unmarshal(trec.Body.Bytes(), &tenants); err != nil {
		t.Fatal(err)
	}
	for _, tc := range tenants.Tenants {
		if tc.Graph == "tracee2e" {
			if tc.WorkUnits == 0 || tc.Pushes == 0 || tc.CostShare <= 0 {
				t.Errorf("tenant row has no billed work: %+v", tc)
			}
			return
		}
	}
	t.Errorf("tenant tracee2e missing from cost report: %+v", tenants.Tenants)
}
