package serve

import (
	"fmt"
	"strconv"

	"factorgraph"
)

// Wire types for the JSON HTTP API. Node ids inside JSON object keys are
// decimal strings (JSON has no integer keys); everything else is numeric.

// ClassifyRequest is the body of POST /v1/classify.
type ClassifyRequest struct {
	// Nodes restricts the response; null/absent means all nodes.
	Nodes []int `json:"nodes"`
	// TopK attaches the top-k class scores per node (0 = labels only).
	TopK int `json:"top_k"`
	// ExtraSeeds overlays ephemeral seeds (node id → class, -1 clears) for
	// this query only.
	ExtraSeeds map[string]int `json:"extra_seeds"`
	// Stream switches the response to NDJSON: one NodeResult per line.
	// Recommended for large node sets / top-k responses.
	Stream bool `json:"stream"`
}

// Query converts the wire request into an engine query.
func (r *ClassifyRequest) Query() (factorgraph.Query, error) {
	q := factorgraph.Query{Nodes: r.Nodes, TopK: r.TopK}
	if r.TopK < 0 {
		return q, fmt.Errorf("top_k must be non-negative, got %d", r.TopK)
	}
	if len(r.ExtraSeeds) > 0 {
		q.ExtraSeeds = make(map[int]int, len(r.ExtraSeeds))
		for key, c := range r.ExtraSeeds {
			node, err := strconv.Atoi(key)
			if err != nil {
				return q, fmt.Errorf("extra_seeds key %q is not a node id", key)
			}
			q.ExtraSeeds[node] = c
		}
	}
	return q, nil
}

// ClassifyResponse is the non-streaming response of POST /v1/classify.
type ClassifyResponse struct {
	Count   int                      `json:"count"`
	Results []factorgraph.NodeResult `json:"results"`
}

// EstimateRequest is the body of POST /v1/estimate.
type EstimateRequest struct {
	// Method selects the estimator: dcer (default), dce, mce, lce, holdout.
	Method string `json:"method"`
	// LMax, Lambda, Restarts, Seed tune DCE/DCEr; zero values mean the
	// paper defaults (ℓmax=5, λ=10, 1/10 restarts).
	LMax     int     `json:"lmax"`
	Lambda   float64 `json:"lambda"`
	Restarts int     `json:"restarts"`
	Seed     uint64  `json:"seed"`
	// Apply installs the resulting H into the serving engine.
	Apply bool `json:"apply"`
}

// EstimateResponse reports an estimation result; H is row-major k×k.
type EstimateResponse struct {
	Method    string      `json:"method"`
	H         [][]float64 `json:"h"`
	RuntimeMS float64     `json:"runtime_ms"`
	Applied   bool        `json:"applied"`
}

// LabelsResponse is the body of GET /v1/labels.
type LabelsResponse struct {
	Count  int            `json:"count"`
	Labels map[string]int `json:"labels"`
}

// LabelsPatch is the body of PATCH /v1/labels: an incremental seed update.
type LabelsPatch struct {
	Set    map[string]int `json:"set"`
	Remove []int          `json:"remove"`
	// Reestimate re-runs the engine's estimator on the updated seeds (one
	// sketch+optimization pass; CSR and ρ(W) stay cached).
	Reestimate bool `json:"reestimate"`
}

// LabelsPatchResponse reports the post-update seed count.
type LabelsPatchResponse struct {
	Labeled     int  `json:"labeled"`
	Reestimated bool `json:"reestimated"`
}

// Health is the body of GET /healthz.
type Health struct {
	Status       string  `json:"status"`
	Nodes        int     `json:"nodes"`
	Edges        int     `json:"edges"`
	Classes      int     `json:"classes"`
	Labeled      int     `json:"labeled"`
	Estimations  int64   `json:"estimations"`
	Propagations int64   `json:"propagations"`
	Queries      int64   `json:"queries"`
	UptimeMS     float64 `json:"uptime_ms"`
}

// APIError is the uniform error body.
type APIError struct {
	Error string `json:"error"`
}
