package serve

import (
	"fmt"
	"strconv"

	"factorgraph"
	"factorgraph/internal/registry"
	"factorgraph/internal/telemetry"
)

// Wire types for the JSON HTTP API. Node ids inside JSON object keys are
// decimal strings (JSON has no integer keys); everything else is numeric.

// CreateGraphRequest is the body of POST /v1/graphs. Exactly one of
// Synthetic, Files or Inline selects the graph source.
type CreateGraphRequest struct {
	// Name is the registry key; per-graph routes address it as
	// /v1/graphs/{name}/... (1-64 chars of [A-Za-z0-9._-]).
	Name string `json:"name"`
	// K is the class count; 0 infers it from the labels (files/inline) or
	// uses the 3-class demo default (synthetic).
	K int `json:"k"`
	// Estimator selects the engine's compatibility estimator: dcer
	// (default), dce, mce, lce, holdout.
	Estimator string `json:"estimator"`
	// Incremental enables the push-based residual propagation subsystem
	// for this graph: label patches cost o(Δ) pushes instead of a full
	// re-propagation, and what-if queries clone only the frontier they
	// touch. Beliefs are served at the LinBP fixed point (to the
	// tolerance) rather than at a fixed iteration count.
	Incremental bool `json:"incremental"`
	// ResidualTol is the per-node residual tolerance of the incremental
	// mode (0 = the engine default, 1e-8). Requires incremental.
	ResidualTol float64 `json:"residual_tol"`
	// ResidualEdgeBudget bounds one push pass at this multiple of the
	// graph's stored edges before falling back to dense propagation
	// (0 = the engine default, 4). Requires incremental.
	ResidualEdgeBudget float64 `json:"residual_edge_budget"`
	// CompactFraction is the share of adjacency entries allowed in the
	// streaming-mutation delta overlay before a PATCH /edges batch
	// triggers compaction (0 = the engine default, 0.25). Requires
	// incremental.
	CompactFraction float64 `json:"compact_fraction"`
	// AsyncCompact runs overlay compactions in the background: the
	// triggering PATCH /edges batch returns immediately (compacting=true)
	// while the merged CSR and ρ(W) are built off the request path, and
	// mutations keep landing in a fresh overlay meanwhile. Requires
	// incremental.
	AsyncCompact bool `json:"async_compact"`
	// Reorder selects the locality-aware node-reordering pass applied at
	// build and at synchronous compactions: "degree" (descending-degree),
	// "rcm" (reverse Cuthill–McKee), or ""/"none" (off). Invisible on the
	// wire — node ids in every request and response stay the external ids
	// the graph was loaded with.
	Reorder string `json:"reorder"`
	// F32Beliefs runs propagations in float32 (half the belief-matrix
	// bandwidth; belief drift vs float64 ≤1e-3 end-to-end). Requires a
	// non-incremental graph.
	F32Beliefs bool `json:"f32_beliefs"`
	// Synthetic plants a partition graph with the paper's generator.
	Synthetic *SyntheticGraphSpec `json:"synthetic"`
	// Files loads TSV files from the server's filesystem.
	Files *FilesGraphSpec `json:"files"`
	// Inline carries the graph in the request body.
	Inline *InlineGraphSpec `json:"inline"`
	// Warm builds the engine before responding instead of lazily on the
	// first query; a failed build unregisters the graph again.
	Warm bool `json:"warm"`
}

// SyntheticGraphSpec mirrors registry.SyntheticSpec on the wire. Omitted
// (or zero) skew and f select the defaults 3 and 0.05 — zero-skew or
// seedless graphs are not expressible, as no engine could serve them.
type SyntheticGraphSpec struct {
	N    int     `json:"n"`
	M    int     `json:"m"`
	Skew float64 `json:"skew"`
	F    float64 `json:"f"`
	Seed uint64  `json:"seed"`
}

// FilesGraphSpec names server-side TSV files ("u\tv[\tw]" edges,
// "node\tlabel" labels).
type FilesGraphSpec struct {
	Edges  string `json:"edges"`
	Labels string `json:"labels"`
}

// InlineGraphSpec uploads a graph verbatim: the edge list and seed labels
// as TSV text. The server retains the payload so the graph can be rebuilt
// transparently after an LRU eviction.
type InlineGraphSpec struct {
	Edges  string `json:"edges"`
	Labels string `json:"labels"`
}

// Spec converts the wire request into a registry spec (which validates it
// at registration).
func (r *CreateGraphRequest) Spec() registry.Spec {
	spec := registry.Spec{
		K: r.K,
		Options: factorgraph.EngineOptions{
			Estimator:          r.Estimator,
			Incremental:        r.Incremental,
			ResidualTol:        r.ResidualTol,
			ResidualEdgeBudget: r.ResidualEdgeBudget,
			CompactFraction:    r.CompactFraction,
			AsyncCompact:       r.AsyncCompact,
			Reorder:            r.Reorder,
			F32Beliefs:         r.F32Beliefs,
		},
	}
	if r.Synthetic != nil {
		spec.Synthetic = &registry.SyntheticSpec{
			N: r.Synthetic.N, M: r.Synthetic.M, Skew: r.Synthetic.Skew,
			F: r.Synthetic.F, Seed: r.Synthetic.Seed,
		}
	}
	if r.Files != nil {
		spec.Files = &registry.FileSpec{Edges: r.Files.Edges, Labels: r.Files.Labels}
	}
	if r.Inline != nil {
		spec.Inline = &registry.InlineSpec{
			Edges:  []byte(r.Inline.Edges),
			Labels: []byte(r.Inline.Labels),
		}
	}
	return spec
}

// GraphListResponse is the body of GET /v1/graphs.
type GraphListResponse struct {
	Count  int                  `json:"count"`
	Graphs []registry.GraphInfo `json:"graphs"`
}

// DeleteGraphResponse is the body of DELETE /v1/graphs/{name}.
type DeleteGraphResponse struct {
	Deleted string `json:"deleted"`
}

// AdminResponse is the body of GET /v1/admin/registry: registry totals
// (budget, resident bytes, aggregate hit/build/eviction counters) plus the
// per-graph breakdown.
type AdminResponse struct {
	Stats  registry.Stats       `json:"stats"`
	Graphs []registry.GraphInfo `json:"graphs"`
}

// ClassifyRequest is the body of POST /v1/classify.
type ClassifyRequest struct {
	// Nodes restricts the response; null/absent means all nodes.
	Nodes []int `json:"nodes"`
	// TopK attaches the top-k class scores per node (0 = labels only).
	TopK int `json:"top_k"`
	// ExtraSeeds overlays ephemeral seeds (node id → class, -1 clears) for
	// this query only.
	ExtraSeeds map[string]int `json:"extra_seeds"`
	// Stream switches the response to NDJSON: one NodeResult per line.
	// Recommended for large node sets / top-k responses.
	Stream bool `json:"stream"`
}

// Query converts the wire request into an engine query.
func (r *ClassifyRequest) Query() (factorgraph.Query, error) {
	q := factorgraph.Query{Nodes: r.Nodes, TopK: r.TopK}
	if r.TopK < 0 {
		return q, fmt.Errorf("top_k must be non-negative, got %d", r.TopK)
	}
	if len(r.ExtraSeeds) > 0 {
		q.ExtraSeeds = make(map[int]int, len(r.ExtraSeeds))
		for key, c := range r.ExtraSeeds {
			node, err := strconv.Atoi(key)
			if err != nil {
				return q, fmt.Errorf("extra_seeds key %q is not a node id", key)
			}
			q.ExtraSeeds[node] = c
		}
	}
	return q, nil
}

// ClassifyResponse is the non-streaming response of POST /v1/classify. The
// residual fields are present when the query was answered by the
// incremental subsystem (engines registered with "incremental": true);
// pushed/cloned counts are non-zero for what-if (extra_seeds) queries and
// report the size of the perturbed frontier.
type ClassifyResponse struct {
	Count   int                      `json:"count"`
	Results []factorgraph.NodeResult `json:"results"`
	// Residual is true when the answer came from the residual subsystem
	// (live fixed-point beliefs or a copy-on-write overlay).
	Residual bool `json:"residual,omitempty"`
	// PushedNodes / TouchedEdges is the push work the overlay performed.
	PushedNodes  int `json:"pushed_nodes,omitempty"`
	TouchedEdges int `json:"touched_edges,omitempty"`
	// ClonedRows is how many copy-on-write belief rows the overlay
	// materialized.
	ClonedRows int `json:"cloned_rows,omitempty"`
	// Cached is true when the what-if was answered from the engine's
	// memoized overlay-frontier cache: an identical extra_seeds set was
	// flushed earlier at the current label generation, so this response
	// cost no pushing at all. The push/clone counts then describe the
	// cached flush.
	Cached bool `json:"cached,omitempty"`
	// Stages is the per-stage time breakdown of how this query was served,
	// present when the request asked for it with ?debug=1 (non-streaming
	// only). Stage names name the engine path taken: overlay_cached /
	// overlay_flush / overlay_reroute for what-if queries, residual_direct
	// for live fixed-point reads, resolve for snapshot resolution (a full
	// propagation when cold), emit for result formatting.
	Stages []StageTiming `json:"stages,omitempty"`
}

// StageTiming is one entry of a debug=1 stage breakdown.
type StageTiming struct {
	Stage string  `json:"stage"`
	Us    float64 `json:"us"`
}

// EstimateRequest is the body of POST /v1/estimate.
type EstimateRequest struct {
	// Method selects the estimator: dcer (default), dce, mce, lce, holdout.
	Method string `json:"method"`
	// LMax, Lambda, Restarts, Seed tune DCE/DCEr; zero values mean the
	// paper defaults (ℓmax=5, λ=10, 1/10 restarts).
	LMax     int     `json:"lmax"`
	Lambda   float64 `json:"lambda"`
	Restarts int     `json:"restarts"`
	Seed     uint64  `json:"seed"`
	// Apply installs the resulting H into the serving engine.
	Apply bool `json:"apply"`
}

// EstimateResponse reports an estimation result; H is row-major k×k.
type EstimateResponse struct {
	Method    string      `json:"method"`
	H         [][]float64 `json:"h"`
	RuntimeMS float64     `json:"runtime_ms"`
	Applied   bool        `json:"applied"`
}

// LabelsResponse is the body of GET /v1/labels.
type LabelsResponse struct {
	Count  int            `json:"count"`
	Labels map[string]int `json:"labels"`
}

// EdgesPatch is the JSON body of PATCH /v1/graphs/{name}/edges: a batched
// streaming topology mutation. Set entries are [u, v] or [u, v, w]
// (weight defaults to 1); Remove entries are [u, v]. AddNodes appends
// isolated nodes first (ids n..n+add_nodes-1), so Set may wire them in the
// same batch. Compact forces a delta-overlay compaction after the batch.
// The same endpoint also accepts Content-Type application/x-ndjson with
// one EdgeOp per line for streamed mutation feeds.
type EdgesPatch struct {
	AddNodes int         `json:"add_nodes"`
	Set      [][]float64 `json:"set"`
	Remove   [][]int     `json:"remove"`
	Compact  bool        `json:"compact"`
}

// EdgeOp is one NDJSON line of a streamed edges PATCH:
//
//	{"op":"set","u":1,"v":2}         upsert edge (weight 1)
//	{"op":"set","u":1,"v":2,"w":0.5} upsert weighted edge
//	{"op":"remove","u":1,"v":2}      delete edge
//	{"op":"add_nodes","count":3}     append isolated nodes
//	{"op":"compact"}                 force compaction after the batch
type EdgeOp struct {
	Op    string  `json:"op"`
	U     int     `json:"u"`
	V     int     `json:"v"`
	W     float64 `json:"w"`
	Count int     `json:"count"`
}

// EdgesPatchResponse reports how a topology mutation batch was applied:
// mode "residual" means the perturbation was repropagated in place by o(Δ)
// residual pushes seeded at the mutated endpoints; "full" means the engine
// was cold and the next query pays the (re-targeted) full solve.
// Compacted/rescaled report that the batch ended in a delta-overlay
// compaction and that the compaction moved ε (the beliefs were
// re-converged to the re-derived scaling). In-flight classify streams keep
// the beliefs of the epoch they started on; requests arriving after the
// response see the mutated topology.
type EdgesPatchResponse struct {
	Nodes          int    `json:"nodes"`
	Edges          int    `json:"edges"`
	AddedNodes     int    `json:"added_nodes,omitempty"`
	SetEdges       int    `json:"set_edges,omitempty"`
	RemovedEdges   int    `json:"removed_edges,omitempty"`
	MissingRemoves int    `json:"missing_removes,omitempty"`
	Mode           string `json:"mode"`
	PushedNodes    int    `json:"pushed_nodes,omitempty"`
	TouchedEdges   int    `json:"touched_edges,omitempty"`
	FellBack       bool   `json:"fell_back,omitempty"`
	Compacted      bool   `json:"compacted,omitempty"`
	Rescaled       bool   `json:"rescaled,omitempty"`
	// Compacting reports that this batch tripped the compaction threshold
	// on an async_compact graph: a background compactor is merging the
	// frozen epoch off the request path — this request did not pay it.
	Compacting      bool    `json:"compacting,omitempty"`
	OverlayFraction float64 `json:"overlay_fraction"`
}

// LabelsPatch is the body of PATCH /v1/labels: an incremental seed update.
type LabelsPatch struct {
	Set    map[string]int `json:"set"`
	Remove []int          `json:"remove"`
	// Reestimate re-runs the engine's estimator on the updated seeds (one
	// sketch+optimization pass; CSR and ρ(W) stay cached).
	Reestimate bool `json:"reestimate"`
}

// LabelsPatchResponse reports the post-update seed count and how the patch
// was propagated: mode "residual" means the change was pushed through the
// live residual state in o(Δ) (pushed_nodes/touched_edges quantify the
// perturbed neighborhood); mode "full" means the belief snapshot was
// invalidated and the next query pays a full propagation.
type LabelsPatchResponse struct {
	Labeled     int    `json:"labeled"`
	Reestimated bool   `json:"reestimated"`
	Mode        string `json:"mode"`
	// PushedNodes / TouchedEdges is the push work of a residual patch.
	PushedNodes  int `json:"pushed_nodes,omitempty"`
	TouchedEdges int `json:"touched_edges,omitempty"`
	// FellBack reports that the perturbation spread past the edge budget
	// and the patch finished with dense sweeps on its private cloned view
	// instead of pushes. The beliefs are already updated when the response
	// arrives — no later query pays for it — so the flag is purely
	// diagnostic: persistent fell_back means the workload's patches are
	// wider than push economics and the edge budget (or the batch size)
	// deserves a look.
	FellBack bool `json:"fell_back,omitempty"`
}

// Health is the body of GET /healthz. The per-graph fields (Nodes, Edges,
// Classes, Labeled and the engine counters) describe the "default" graph
// when its engine is resident and are zero otherwise; multi-tenant
// deployments read GET /v1/admin/registry instead.
type Health struct {
	Status        string  `json:"status"`
	Graphs        int     `json:"graphs"`
	GraphsBuilt   int     `json:"graphs_built"`
	ResidentBytes int64   `json:"resident_bytes"`
	Nodes         int     `json:"nodes"`
	Edges         int     `json:"edges"`
	Classes       int     `json:"classes"`
	Labeled       int     `json:"labeled"`
	Estimations   int64   `json:"estimations"`
	Propagations  int64   `json:"propagations"`
	Queries       int64   `json:"queries"`
	GoVersion     string  `json:"go_version"`
	UptimeMS      float64 `json:"uptime_ms"`
}

// BuildResponse is the body of GET /v1/admin/build: what binary is serving.
type BuildResponse struct {
	// Path / Version identify the main module (Version is "(devel)" for
	// plain `go build` binaries).
	Path    string `json:"path,omitempty"`
	Version string `json:"version,omitempty"`
	// Build carries selected debug.ReadBuildInfo settings when stamped:
	// vcs.revision, vcs.time, vcs.modified, GOOS, GOARCH, -buildmode.
	Build      map[string]string `json:"build,omitempty"`
	GoVersion  string            `json:"go_version"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	NumCPU     int               `json:"num_cpu"`
}

// APIError is the uniform error body.
type APIError struct {
	Error string `json:"error"`
}

// TimelineResponse is the body of GET /v1/admin/timeline: the flight
// recorder's rolling ring of sampled series, oldest point first. Series
// without a "graph" key are process-wide.
type TimelineResponse struct {
	IntervalSeconds float64                    `json:"interval_seconds"`
	Series          []telemetry.TimelineSeries `json:"series"`
}

// SlowLogEntry is one captured slow request: when, where, how far past the
// threshold, and the engine's stage breakdown when the route threads one.
type SlowLogEntry struct {
	Time        string        `json:"time"`
	Graph       string        `json:"graph,omitempty"`
	Route       string        `json:"route"`
	DurationUs  int64         `json:"duration_us"`
	ThresholdUs int64         `json:"threshold_us"`
	Stages      []StageTiming `json:"stages,omitempty"`
}

// SlowLogResponse is the body of GET /v1/admin/slowlog, newest entry first.
// ThresholdUs is the adaptive capture threshold currently in force (p99 of
// the tracked window times the configured factor); 0 entries with a huge
// threshold means the log is still warming up.
type SlowLogResponse struct {
	ThresholdUs int64          `json:"threshold_us"`
	Entries     []SlowLogEntry `json:"entries"`
}

// TraceSummary is one retained trace in the GET /v1/admin/traces listing.
// TraceID is the 32-hex W3C trace id — the same id the /metrics exemplars
// carry and the ?id= parameter accepts. Reason says why the trace was
// captured: "head" (the local sampler), "parent" (an upstream traceparent
// arrived sampled), "slow" (the request beat the slow-log threshold) or
// "error" (5xx). Depth is the longest parent chain in the span tree (the
// request root span is depth 1).
type TraceSummary struct {
	TraceID    string  `json:"trace_id"`
	Graph      string  `json:"graph"`
	Kind       string  `json:"kind"`
	Time       string  `json:"time"`
	DurationUs float64 `json:"duration_us"`
	Status     int     `json:"status"`
	Reason     string  `json:"reason"`
	SpanCount  int     `json:"span_count"`
	Depth      int     `json:"depth"`
	// Remote is true when the trace context arrived on the request (the
	// trace originated upstream) rather than being minted here.
	Remote bool `json:"remote,omitempty"`
}

// TracesResponse is the body of GET /v1/admin/traces (no ?id): retained
// traces newest first, plus the sampler rate and ring capacity in force.
type TracesResponse struct {
	SampleRate float64        `json:"sample_rate"`
	Capacity   int            `json:"capacity"`
	Count      int            `json:"count"`
	Traces     []TraceSummary `json:"traces"`
}

// SpanWire is one span of a GET /v1/admin/traces?id= response. ParentID
// links the tree: every span's chain terminates at the request root span,
// whose own parent is the remote traceparent's span id (or all zeros when
// the trace originated here).
type SpanWire struct {
	Name       string  `json:"name"`
	SpanID     string  `json:"span_id"`
	ParentID   string  `json:"parent_span_id"`
	StartUs    float64 `json:"start_us"`
	DurationUs float64 `json:"duration_us"`
}

// CostWire is the per-request work attribution of one stored trace.
type CostWire struct {
	Pushes          int64   `json:"pushes"`
	EdgesTraversed  int64   `json:"edges_traversed"`
	RowsCloned      int64   `json:"rows_cloned"`
	FlushSeconds    float64 `json:"flush_seconds"`
	LockWaitSeconds float64 `json:"lock_wait_seconds"`
}

// TraceDetail is the body of GET /v1/admin/traces?id=: the summary plus
// the full span tree and the request's cost attribution.
type TraceDetail struct {
	TraceSummary
	RootSpanID     string     `json:"root_span_id"`
	RemoteParentID string     `json:"remote_parent_id,omitempty"`
	Cost           CostWire   `json:"cost"`
	Spans          []SpanWire `json:"spans"`
}

// TenantCost is one graph's row of the GET /v1/admin/tenants cost report:
// cumulative request-attributed work since the graph's series were created.
// WorkUnits is the scalar cost score (pushes + edges traversed + rows
// cloned) and CostShare that graph's fraction of the total across tenants.
type TenantCost struct {
	Graph           string  `json:"graph"`
	Requests        int64   `json:"requests"`
	Pushes          int64   `json:"pushes"`
	EdgesTraversed  int64   `json:"edges_traversed"`
	RowsCloned      int64   `json:"rows_cloned"`
	FlushSeconds    float64 `json:"flush_seconds"`
	LockWaitSeconds float64 `json:"lock_wait_seconds"`
	WorkUnits       int64   `json:"work_units"`
	CostShare       float64 `json:"cost_share"`
}

// TenantsResponse is the body of GET /v1/admin/tenants, most expensive
// tenant first.
type TenantsResponse struct {
	Count          int          `json:"count"`
	TotalWorkUnits int64        `json:"total_work_units"`
	Tenants        []TenantCost `json:"tenants"`
}

// HealthCheck is one numeric-health reading with its warn threshold
// applied. The comparison direction depends on the check (margin warns
// low, everything else warns high); Status carries the verdict so clients
// need not re-implement the thresholds.
type HealthCheck struct {
	Name   string  `json:"name"`
	Status string  `json:"status"` // ok | warn
	Value  float64 `json:"value"`
	WarnAt float64 `json:"warn_at,omitempty"`
	Detail string  `json:"detail,omitempty"`
}

// GraphHealth is one graph's numeric-health rollup. The tuned_* fields are
// the exec drain-schedule thresholds pinned for the graph's current epoch;
// schedule_tuned reports whether they came from a live measurement
// (build/compaction auto-tune) or are the static defaults.
type GraphHealth struct {
	Graph               string        `json:"graph"`
	Status              string        `json:"status"` // ok | warn: worst check
	Incremental         bool          `json:"incremental"`
	Epoch               int64         `json:"epoch"`
	ScheduleTuned       bool          `json:"schedule_tuned"`
	TunedDeltaDivisor   int           `json:"tuned_delta_divisor,omitempty"`
	TunedMinPullWorkers int           `json:"tuned_min_pull_workers,omitempty"`
	Checks              []HealthCheck `json:"checks"`
}

// NumericHealthResponse is the body of GET /v1/admin/health. Cold lists
// graphs that are registered but not resident — health polling never
// builds an engine.
type NumericHealthResponse struct {
	Status string        `json:"status"` // ok | warn: worst graph
	Graphs []GraphHealth `json:"graphs"`
	Cold   []string      `json:"cold,omitempty"`
}
