// Package sparse implements the hand-rolled CSR (compressed sparse row)
// matrix kernel the reproduction is built on.
//
// The paper's hot loop is W × (n×k dense) where W is the n×n adjacency
// matrix with m nonzeros and k is small (2–12). CSR gives contiguous row
// scans and row-parallel multiplication; all estimation sketches
// (Algorithm 4.4) reduce to repeated calls of MulDense.
package sparse

import (
	"fmt"
	"sort"
	"sync/atomic"

	"factorgraph/internal/dense"
)

// CSR is a square n×n sparse matrix in compressed-sparse-row form.
// If Data is nil every stored entry has value 1 (the common unweighted
// adjacency case), which keeps 16M-edge graphs in memory comfortably.
type CSR struct {
	N       int
	IndPtr  []int     // len N+1; row i occupies Indices[IndPtr[i]:IndPtr[i+1]]
	Indices []int32   // column indices, sorted within each row
	Data    []float64 // nil ⇒ implicit all-ones

	rho atomic.Pointer[rhoMemo] // memoized spectral radius; see SpectralRadiusCached
}

// NNZ returns the number of stored entries.
func (c *CSR) NNZ() int { return len(c.Indices) }

// Dim returns the node count n. Together with Row and MulDenseInto it makes
// *CSR the canonical implementation of the execution layer's RowIterator.
func (c *CSR) Dim() int { return c.N }

// Row returns row u's column indices and weights (nil weights ⇒ implicit
// all-ones). The slices alias CSR storage; callers must not mutate them.
func (c *CSR) Row(u int) ([]int32, []float64) {
	lo, hi := c.IndPtr[u], c.IndPtr[u+1]
	if c.Data == nil {
		return c.Indices[lo:hi], nil
	}
	return c.Indices[lo:hi], c.Data[lo:hi]
}

// Coord is a single (row, col, weight) triple used during construction.
type Coord struct {
	Row, Col int32
	W        float64
}

// NewFromCoords builds a CSR matrix from coordinate triples. Duplicate
// coordinates are summed. Weights equal to 1 everywhere collapse to the
// implicit-ones representation.
func NewFromCoords(n int, coords []Coord) (*CSR, error) {
	if n < 0 {
		return nil, fmt.Errorf("sparse: negative dimension %d", n)
	}
	for _, c := range coords {
		if c.Row < 0 || int(c.Row) >= n || c.Col < 0 || int(c.Col) >= n {
			return nil, fmt.Errorf("sparse: coordinate (%d,%d) out of range for n=%d", c.Row, c.Col, n)
		}
	}
	sort.Slice(coords, func(i, j int) bool {
		if coords[i].Row != coords[j].Row {
			return coords[i].Row < coords[j].Row
		}
		return coords[i].Col < coords[j].Col
	})
	indptr := make([]int, n+1)
	indices := make([]int32, 0, len(coords))
	data := make([]float64, 0, len(coords))
	for i := 0; i < len(coords); {
		j := i
		w := 0.0
		for j < len(coords) && coords[j].Row == coords[i].Row && coords[j].Col == coords[i].Col {
			w += coords[j].W
			j++
		}
		indices = append(indices, coords[i].Col)
		data = append(data, w)
		indptr[coords[i].Row+1]++
		i = j
	}
	for i := 0; i < n; i++ {
		indptr[i+1] += indptr[i]
	}
	allOnes := true
	for _, w := range data {
		if w != 1 {
			allOnes = false
			break
		}
	}
	c := &CSR{N: n, IndPtr: indptr, Indices: indices}
	if !allOnes {
		c.Data = data
	}
	return c, nil
}

// NewSymmetricFromEdges builds the symmetric adjacency matrix of an
// undirected graph: each edge (u,v) contributes entries (u,v) and (v,u).
// Self-loops contribute a single diagonal entry. weights may be nil for an
// unweighted graph.
func NewSymmetricFromEdges(n int, edges [][2]int32, weights []float64) (*CSR, error) {
	if weights != nil && len(weights) != len(edges) {
		return nil, fmt.Errorf("sparse: %d weights for %d edges", len(weights), len(edges))
	}
	coords := make([]Coord, 0, 2*len(edges))
	for i, e := range edges {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		coords = append(coords, Coord{e[0], e[1], w})
		if e[0] != e[1] {
			coords = append(coords, Coord{e[1], e[0], w})
		}
	}
	return NewFromCoords(n, coords)
}

// At returns the (i, j) entry (zero if absent). O(log row-degree).
func (c *CSR) At(i, j int) float64 {
	if i < 0 || i >= c.N || j < 0 || j >= c.N {
		panic(fmt.Sprintf("sparse: index (%d,%d) out of range n=%d", i, j, c.N))
	}
	lo, hi := c.IndPtr[i], c.IndPtr[i+1]
	row := c.Indices[lo:hi]
	p := sort.Search(len(row), func(p int) bool { return row[p] >= int32(j) })
	if p < len(row) && row[p] == int32(j) {
		if c.Data == nil {
			return 1
		}
		return c.Data[lo+p]
	}
	return 0
}

// Degrees returns the weighted degree (row sum) of every row — the diagonal
// of the paper's degree matrix D.
func (c *CSR) Degrees() []float64 {
	d := make([]float64, c.N)
	for i := 0; i < c.N; i++ {
		lo, hi := c.IndPtr[i], c.IndPtr[i+1]
		if c.Data == nil {
			d[i] = float64(hi - lo)
			continue
		}
		var s float64
		for _, w := range c.Data[lo:hi] {
			s += w
		}
		d[i] = s
	}
	return d
}

// ToDense materializes the matrix; intended for tests and tiny examples.
func (c *CSR) ToDense() *dense.Matrix {
	m := dense.New(c.N, c.N)
	for i := 0; i < c.N; i++ {
		for p := c.IndPtr[i]; p < c.IndPtr[i+1]; p++ {
			w := 1.0
			if c.Data != nil {
				w = c.Data[p]
			}
			m.Set(i, int(c.Indices[p]), w)
		}
	}
	return m
}

// MulDense returns W × X for a dense n×k matrix X, parallelized over row
// blocks. The result is a fresh n×k matrix.
func (c *CSR) MulDense(x *dense.Matrix) *dense.Matrix {
	out := dense.New(c.N, x.Cols)
	c.MulDenseInto(out, x)
	return out
}

// MulDenseInto computes out = W × X. out must not alias x. The dispatch is
// by shape, every path bit-identical to the flat scan: narrow X (k ≤ 4, the
// LinBP class counts) runs the register-blocked kernel (mulDenseReg); wide
// X that outgrows L2 runs the column-tiled kernel (mulDenseTiled); the rest
// — where X is cache-resident anyway — takes the simple row scan.
func (c *CSR) MulDenseInto(out, x *dense.Matrix) {
	c.checkMulDenseShapes(out, x)
	switch {
	case x.Cols >= 2 && x.Cols <= spmmRegMaxCols:
		c.mulDenseReg(out, x)
	case c.N*x.Cols*8 > spmmTiledMinXBytes && c.NNZ() >= spmmTiledMinNNZ:
		c.mulDenseTiled(out, x)
	default:
		c.MulDenseIntoSimple(out, x)
	}
}

// MulVec returns W × v for a length-n vector. Rows are independent sums, so
// past a size cutoff the scan runs row-parallel on the shared pool with
// bit-identical results — the ρ(W) power iteration calls this on every
// compaction, which sits on the async-compact critical path.
func (c *CSR) MulVec(v []float64) []float64 {
	if len(v) != c.N {
		panic(fmt.Sprintf("sparse: MulVec length %d, want %d", len(v), c.N))
	}
	out := make([]float64, c.N)
	rows := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var s float64
			start, end := c.IndPtr[i], c.IndPtr[i+1]
			if c.Data == nil {
				for _, col := range c.Indices[start:end] {
					s += v[col]
				}
			} else {
				for p := start; p < end; p++ {
					s += c.Data[p] * v[c.Indices[p]]
				}
			}
			out[i] = s
		}
	}
	if c.NNZ() >= mulVecParallelNNZ {
		defaultPool.parallelRows(c.N, rows)
	} else {
		rows(0, c.N)
	}
	return out
}

// Mul returns the sparse product a × b. Used only by the explicit-Wℓ
// baseline of Figure 5b (the factorized path avoids it); intermediate
// densification is exactly the cost the paper's Algorithm 4.4 eliminates.
func Mul(a, b *CSR) (*CSR, error) {
	if a.N != b.N {
		return nil, fmt.Errorf("sparse: Mul dimension mismatch %d vs %d", a.N, b.N)
	}
	n := a.N
	indptr := make([]int, n+1)
	var indices []int32
	var data []float64
	acc := make([]float64, n)
	touched := make([]int32, 0, 256)
	for i := 0; i < n; i++ {
		touched = touched[:0]
		for p := a.IndPtr[i]; p < a.IndPtr[i+1]; p++ {
			aw := 1.0
			if a.Data != nil {
				aw = a.Data[p]
			}
			kcol := a.Indices[p]
			for q := b.IndPtr[kcol]; q < b.IndPtr[kcol+1]; q++ {
				bw := 1.0
				if b.Data != nil {
					bw = b.Data[q]
				}
				j := b.Indices[q]
				if acc[j] == 0 {
					touched = append(touched, j)
				}
				acc[j] += aw * bw
			}
		}
		sort.Slice(touched, func(x, y int) bool { return touched[x] < touched[y] })
		for _, j := range touched {
			if acc[j] != 0 {
				indices = append(indices, j)
				data = append(data, acc[j])
			}
			acc[j] = 0
		}
		indptr[i+1] = len(indices)
	}
	return &CSR{N: n, IndPtr: indptr, Indices: indices, Data: data}, nil
}

// AddDiag returns a + diag(d) as a new CSR matrix (d may contain zeros).
func AddDiag(a *CSR, d []float64) (*CSR, error) {
	if len(d) != a.N {
		return nil, fmt.Errorf("sparse: AddDiag length %d, want %d", len(d), a.N)
	}
	coords := make([]Coord, 0, a.NNZ()+a.N)
	for i := 0; i < a.N; i++ {
		for p := a.IndPtr[i]; p < a.IndPtr[i+1]; p++ {
			w := 1.0
			if a.Data != nil {
				w = a.Data[p]
			}
			coords = append(coords, Coord{int32(i), a.Indices[p], w})
		}
		if d[i] != 0 {
			coords = append(coords, Coord{int32(i), int32(i), d[i]})
		}
	}
	return NewFromCoords(a.N, coords)
}

// Scale returns c·a as a new CSR matrix.
func Scale(a *CSR, c float64) *CSR {
	out := &CSR{N: a.N, IndPtr: a.IndPtr, Indices: a.Indices, Data: make([]float64, a.NNZ())}
	for i := range out.Data {
		w := 1.0
		if a.Data != nil {
			w = a.Data[i]
		}
		out.Data[i] = c * w
	}
	return out
}
