package sparse

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"factorgraph/internal/dense"
)

func TestAtOutOfRangePanics(t *testing.T) {
	w := triangle(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	w.At(0, 99)
}

func TestMulVecLengthPanics(t *testing.T) {
	w := triangle(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	w.MulVec([]float64{1})
}

func TestMulDenseShapePanics(t *testing.T) {
	w := triangle(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	w.MulDense(dense.New(5, 2))
}

func TestMulDenseIntoBadOutPanics(t *testing.T) {
	w := triangle(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	w.MulDenseInto(dense.New(2, 2), dense.New(3, 2))
}

func TestWeightedSparseMul(t *testing.T) {
	a, err := NewFromCoords(2, []Coord{{0, 1, 2}, {1, 0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	prod, err := Mul(a, a)
	if err != nil {
		t.Fatal(err)
	}
	// [[0,2],[3,0]]² = [[6,0],[0,6]]
	if prod.At(0, 0) != 6 || prod.At(1, 1) != 6 || prod.At(0, 1) != 0 {
		t.Errorf("weighted Mul wrong: %v", prod.ToDense())
	}
}

func TestAddDiagAllZeros(t *testing.T) {
	w := triangle(t)
	got, err := AddDiag(w, []float64{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !dense.Equal(got.ToDense(), w.ToDense(), 0) {
		t.Error("AddDiag with zeros changed the matrix")
	}
}

func TestScalePreservesStructure(t *testing.T) {
	w := triangle(t)
	s := Scale(w, 2)
	if s.NNZ() != w.NNZ() {
		t.Errorf("Scale changed nnz: %d vs %d", s.NNZ(), w.NNZ())
	}
	// Original untouched (implicit ones).
	if w.Data != nil {
		t.Error("Scale mutated the original")
	}
}

// Property: (A·B)·v == A·(B·v) for sparse matrices and vectors.
func TestMulVecAssociativityProperty(t *testing.T) {
	r := rand.New(rand.NewPCG(121, 122))
	f := func() bool {
		n := 2 + r.IntN(8)
		a := randGraph(r, n, 0.5)
		b := randGraph(r, n, 0.5)
		v := make([]float64, n)
		for i := range v {
			v[i] = r.NormFloat64()
		}
		ab, err := Mul(a, b)
		if err != nil {
			return false
		}
		left := ab.MulVec(v)
		right := a.MulVec(b.MulVec(v))
		for i := range left {
			if d := left[i] - right[i]; d > 1e-9 || d < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: degrees equal row sums of the dense form.
func TestDegreesMatchDenseProperty(t *testing.T) {
	r := rand.New(rand.NewPCG(123, 124))
	f := func() bool {
		n := 2 + r.IntN(10)
		w := randGraph(r, n, 0.4)
		degs := w.Degrees()
		rows := dense.RowSums(w.ToDense())
		for i := range degs {
			if degs[i] != rows[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
