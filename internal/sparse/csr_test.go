package sparse

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"factorgraph/internal/dense"
)

// triangle builds the unweighted 3-cycle adjacency matrix.
func triangle(t *testing.T) *CSR {
	t.Helper()
	w, err := NewSymmetricFromEdges(3, [][2]int32{{0, 1}, {1, 2}, {0, 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewSymmetricFromEdges(t *testing.T) {
	w := triangle(t)
	if w.NNZ() != 6 {
		t.Fatalf("NNZ = %d, want 6", w.NNZ())
	}
	if w.Data != nil {
		t.Error("unweighted graph should use implicit ones")
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 1.0
			if i == j {
				want = 0
			}
			if got := w.At(i, j); got != want {
				t.Errorf("At(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestNewFromCoordsDuplicatesSum(t *testing.T) {
	c, err := NewFromCoords(2, []Coord{{0, 1, 2}, {0, 1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.At(0, 1); got != 5 {
		t.Errorf("duplicate coords not summed: %v", got)
	}
}

func TestNewFromCoordsOutOfRange(t *testing.T) {
	if _, err := NewFromCoords(2, []Coord{{0, 5, 1}}); err == nil {
		t.Error("expected out-of-range error")
	}
	if _, err := NewFromCoords(-1, nil); err == nil {
		t.Error("expected negative-dimension error")
	}
}

func TestWeightedEdges(t *testing.T) {
	w, err := NewSymmetricFromEdges(2, [][2]int32{{0, 1}}, []float64{2.5})
	if err != nil {
		t.Fatal(err)
	}
	if w.At(0, 1) != 2.5 || w.At(1, 0) != 2.5 {
		t.Errorf("weighted edge wrong: %v %v", w.At(0, 1), w.At(1, 0))
	}
	if _, err := NewSymmetricFromEdges(2, [][2]int32{{0, 1}}, []float64{1, 2}); err == nil {
		t.Error("expected weight-length error")
	}
}

func TestSelfLoopSingleEntry(t *testing.T) {
	w, err := NewSymmetricFromEdges(2, [][2]int32{{0, 0}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if w.NNZ() != 1 || w.At(0, 0) != 1 {
		t.Errorf("self-loop handling wrong: nnz=%d at=%v", w.NNZ(), w.At(0, 0))
	}
}

func TestDegrees(t *testing.T) {
	w := triangle(t)
	for i, d := range w.Degrees() {
		if d != 2 {
			t.Errorf("degree[%d] = %v, want 2", i, d)
		}
	}
	wt, _ := NewSymmetricFromEdges(2, [][2]int32{{0, 1}}, []float64{3})
	if d := wt.Degrees(); d[0] != 3 || d[1] != 3 {
		t.Errorf("weighted degrees = %v", d)
	}
}

func TestMulDenseMatchesDense(t *testing.T) {
	w := triangle(t)
	x := dense.FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	got := w.MulDense(x)
	want := dense.Mul(w.ToDense(), x)
	if !dense.Equal(got, want, 1e-12) {
		t.Errorf("MulDense = %v, want %v", got, want)
	}
}

// Property: CSR MulDense agrees with the dense reference on random graphs.
func TestMulDenseProperty(t *testing.T) {
	r := rand.New(rand.NewPCG(11, 12))
	f := func() bool {
		n := 2 + r.IntN(10)
		w := randGraph(r, n, 0.4)
		x := dense.New(n, 3)
		for i := range x.Data {
			x.Data[i] = r.NormFloat64()
		}
		return dense.Equal(w.MulDense(x), dense.Mul(w.ToDense(), x), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMulVec(t *testing.T) {
	w := triangle(t)
	got := w.MulVec([]float64{1, 2, 3})
	want := []float64{5, 4, 3}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("MulVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// Property: sparse Mul matches dense multiplication.
func TestSparseMulProperty(t *testing.T) {
	r := rand.New(rand.NewPCG(13, 14))
	f := func() bool {
		n := 2 + r.IntN(8)
		a := randGraph(r, n, 0.5)
		b := randGraph(r, n, 0.5)
		prod, err := Mul(a, b)
		if err != nil {
			return false
		}
		return dense.Equal(prod.ToDense(), dense.Mul(a.ToDense(), b.ToDense()), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMulDimensionMismatch(t *testing.T) {
	a, _ := NewFromCoords(2, nil)
	b, _ := NewFromCoords(3, nil)
	if _, err := Mul(a, b); err == nil {
		t.Error("expected dimension mismatch error")
	}
}

func TestAddDiag(t *testing.T) {
	w := triangle(t)
	got, err := AddDiag(w, []float64{1, 0, -2})
	if err != nil {
		t.Fatal(err)
	}
	if got.At(0, 0) != 1 || got.At(1, 1) != 0 || got.At(2, 2) != -2 {
		t.Errorf("AddDiag diagonal wrong: %v", got.ToDense())
	}
	if got.At(0, 1) != 1 {
		t.Error("AddDiag lost off-diagonal entries")
	}
	if _, err := AddDiag(w, []float64{1}); err == nil {
		t.Error("expected length error")
	}
}

func TestScale(t *testing.T) {
	w := triangle(t)
	s := Scale(w, 0.5)
	if s.At(0, 1) != 0.5 {
		t.Errorf("Scale = %v", s.At(0, 1))
	}
}

func TestSpectralRadiusKnown(t *testing.T) {
	// 3-cycle: eigenvalues {2, −1, −1}, so ρ = 2.
	w := triangle(t)
	if got := w.SpectralRadius(300); math.Abs(got-2) > 1e-6 {
		t.Errorf("ρ(triangle) = %v, want 2", got)
	}
	// Path of 2 nodes: eigenvalues {1, −1}, ρ = 1.
	p, _ := NewSymmetricFromEdges(2, [][2]int32{{0, 1}}, nil)
	if got := p.SpectralRadius(300); math.Abs(got-1) > 1e-6 {
		t.Errorf("ρ(path2) = %v, want 1", got)
	}
	// Empty matrix.
	e, _ := NewFromCoords(4, nil)
	if got := e.SpectralRadius(10); got != 0 {
		t.Errorf("ρ(empty) = %v, want 0", got)
	}
}

// Property: ρ(W) is at most the max degree and at least the average degree
// for any nonempty undirected graph (standard bounds).
func TestSpectralRadiusBoundsProperty(t *testing.T) {
	r := rand.New(rand.NewPCG(15, 16))
	f := func() bool {
		n := 3 + r.IntN(10)
		w := randGraph(r, n, 0.5)
		if w.NNZ() == 0 {
			return true
		}
		rho := w.SpectralRadius(500)
		degs := w.Degrees()
		var maxd, sumd float64
		for _, d := range degs {
			if d > maxd {
				maxd = d
			}
			sumd += d
		}
		avg := sumd / float64(n)
		return rho <= maxd+1e-6 && rho >= avg-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestToDenseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewPCG(17, 18))
	w := randGraph(r, 6, 0.5)
	d := w.ToDense()
	// Symmetry of the adjacency matrix.
	if !dense.Equal(d, dense.Transpose(d), 0) {
		t.Error("adjacency not symmetric")
	}
}

// randGraph builds a random undirected unweighted graph with edge
// probability p.
func randGraph(r *rand.Rand, n int, p float64) *CSR {
	var edges [][2]int32
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				edges = append(edges, [2]int32{int32(i), int32(j)})
			}
		}
	}
	w, err := NewSymmetricFromEdges(n, edges, nil)
	if err != nil {
		panic(err)
	}
	return w
}
