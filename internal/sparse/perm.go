package sparse

import (
	"fmt"
	"sort"
)

// Reorder modes accepted by OrderBy (and by the engine/spec knobs built on
// it). The empty string and "none" mean "keep upload order".
const (
	ReorderNone   = "none"
	ReorderDegree = "degree"
	ReorderRCM    = "rcm"
)

// KnownReorder reports whether mode names a supported node-reordering pass.
func KnownReorder(mode string) bool {
	switch mode {
	case "", ReorderNone, ReorderDegree, ReorderRCM:
		return true
	}
	return false
}

// Perm is a stable bijection between external node ids (the ids callers use
// on the wire, which never change) and internal ids (the row numbers of a
// locality-reordered CSR). It is immutable after construction: growth and
// re-reordering build a new Perm, so concurrent readers holding an old one
// stay consistent.
type Perm struct {
	toInternal []int32 // toInternal[ext] = internal row
	toExternal []int32 // toExternal[internal] = ext id
}

// NewPerm builds a Perm from a scatter map newID where newID[ext] holds the
// internal row assigned to external node ext. newID must be a permutation of
// [0, len); NewPerm panics otherwise (orderings produced by OrderBy always
// satisfy this).
func NewPerm(newID []int32) *Perm {
	n := len(newID)
	inv := make([]int32, n)
	for i := range inv {
		inv[i] = -1
	}
	for ext, in := range newID {
		if in < 0 || int(in) >= n || inv[in] != -1 {
			panic(fmt.Sprintf("sparse: NewPerm: newID is not a permutation at %d→%d", ext, in))
		}
		inv[in] = int32(ext)
	}
	toInt := make([]int32, n)
	copy(toInt, newID)
	return &Perm{toInternal: toInt, toExternal: inv}
}

// Len returns the number of nodes the mapping covers.
func (p *Perm) Len() int { return len(p.toInternal) }

// ToInternal maps an external node id to its internal row. A nil Perm is the
// identity.
func (p *Perm) ToInternal(ext int) int {
	if p == nil {
		return ext
	}
	return int(p.toInternal[ext])
}

// ToExternal maps an internal row back to the external node id.
func (p *Perm) ToExternal(internal int) int {
	if p == nil {
		return internal
	}
	return int(p.toExternal[internal])
}

// Grown returns a Perm extended to n nodes, the new tail mapped identically
// (new external id ⇔ same internal row). The receiver is not modified; a nil
// receiver yields an identity Perm of size n.
func (p *Perm) Grown(n int) *Perm {
	old := 0
	if p != nil {
		old = len(p.toInternal)
	}
	toInt := make([]int32, n)
	toExt := make([]int32, n)
	if p != nil {
		copy(toInt, p.toInternal)
		copy(toExt, p.toExternal)
	}
	for i := old; i < n; i++ {
		toInt[i] = int32(i)
		toExt[i] = int32(i)
	}
	return &Perm{toInternal: toInt, toExternal: toExt}
}

// ComposedWith returns the Perm mapping external ids through the receiver
// and then through newID (a second reordering applied to the receiver's
// internal space, e.g. at a reordering compaction). A nil receiver composes
// against the identity.
func (p *Perm) ComposedWith(newID []int32) *Perm {
	n := len(newID)
	toInt := make([]int32, n)
	for ext := 0; ext < n; ext++ {
		toInt[ext] = newID[p.ToInternal(ext)]
	}
	return NewPerm(toInt)
}

// DegreeOrder returns a scatter map newID (newID[old] = new row) placing
// nodes in descending-degree order, ties broken by old id for determinism.
// Hub rows land first, so the dense belief rows they reference stay resident
// across the row scans of an SpMM — the cheap locality win.
func DegreeOrder(c *CSR) []int32 {
	n := c.N
	order := make([]int32, n) // order[new] = old
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		da := c.IndPtr[order[a]+1] - c.IndPtr[order[a]]
		db := c.IndPtr[order[b]+1] - c.IndPtr[order[b]]
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	newID := make([]int32, n)
	for newPos, old := range order {
		newID[old] = int32(newPos)
	}
	return newID
}

// RCMOrder returns a scatter map newID (newID[old] = new row) computed by
// reverse Cuthill–McKee: per connected component, breadth-first from a
// minimum-degree seed with neighbors visited in increasing-degree order,
// then the whole ordering reversed. RCM minimizes bandwidth, so a row's
// neighbor columns cluster near the row itself and column tiles of the SpMM
// hit far fewer distinct x-rows.
func RCMOrder(c *CSR) []int32 {
	n := c.N
	deg := make([]int32, n)
	for i := 0; i < n; i++ {
		deg[i] = int32(c.IndPtr[i+1] - c.IndPtr[i])
	}
	// Nodes sorted by (degree, id): BFS seeds are taken in this order so
	// every component starts from its own minimum-degree node.
	seeds := make([]int32, n)
	for i := range seeds {
		seeds[i] = int32(i)
	}
	sort.SliceStable(seeds, func(a, b int) bool {
		if deg[seeds[a]] != deg[seeds[b]] {
			return deg[seeds[a]] < deg[seeds[b]]
		}
		return seeds[a] < seeds[b]
	})
	visited := make([]bool, n)
	bfs := make([]int32, 0, n) // Cuthill–McKee order before reversal
	nbr := make([]int32, 0, 64)
	for _, s := range seeds {
		if visited[s] {
			continue
		}
		visited[s] = true
		head := len(bfs)
		bfs = append(bfs, s)
		for head < len(bfs) {
			u := bfs[head]
			head++
			nbr = nbr[:0]
			for p := c.IndPtr[u]; p < c.IndPtr[u+1]; p++ {
				v := c.Indices[p]
				if !visited[v] {
					visited[v] = true
					nbr = append(nbr, v)
				}
			}
			sort.Slice(nbr, func(a, b int) bool {
				if deg[nbr[a]] != deg[nbr[b]] {
					return deg[nbr[a]] < deg[nbr[b]]
				}
				return nbr[a] < nbr[b]
			})
			bfs = append(bfs, nbr...)
		}
	}
	newID := make([]int32, n)
	for pos, old := range bfs {
		newID[old] = int32(n - 1 - pos) // the "reverse" in RCM
	}
	return newID
}

// OrderBy computes the scatter map for the named reordering mode, or nil for
// the identity (empty/"none" mode, unknown mode, or a trivial matrix).
func OrderBy(c *CSR, mode string) []int32 {
	if c == nil || c.N < 2 {
		return nil
	}
	switch mode {
	case ReorderDegree:
		return DegreeOrder(c)
	case ReorderRCM:
		return RCMOrder(c)
	}
	return nil
}

// Permute returns the symmetrically permuted matrix B with
// B[newID[i], newID[j]] = A[i, j]. Rows keep their column indices sorted, so
// the result is a canonical CSR and every kernel (including the tile-ordered
// SpMM) accumulates in the same order as a cold build of the same layout.
func (c *CSR) Permute(newID []int32) *CSR {
	if len(newID) != c.N {
		panic(fmt.Sprintf("sparse: Permute map length %d, want %d", len(newID), c.N))
	}
	n := c.N
	indptr := make([]int, n+1)
	for old := 0; old < n; old++ {
		indptr[int(newID[old])+1] = c.IndPtr[old+1] - c.IndPtr[old]
	}
	for i := 0; i < n; i++ {
		indptr[i+1] += indptr[i]
	}
	indices := make([]int32, c.NNZ())
	var data []float64
	if c.Data != nil {
		data = make([]float64, c.NNZ())
	}
	type ent struct {
		col int32
		w   float64
	}
	var scratch []ent
	for old := 0; old < n; old++ {
		lo, hi := c.IndPtr[old], c.IndPtr[old+1]
		scratch = scratch[:0]
		for p := lo; p < hi; p++ {
			w := 1.0
			if c.Data != nil {
				w = c.Data[p]
			}
			scratch = append(scratch, ent{col: newID[c.Indices[p]], w: w})
		}
		sort.Slice(scratch, func(a, b int) bool { return scratch[a].col < scratch[b].col })
		dst := indptr[newID[old]]
		for j, e := range scratch {
			indices[dst+j] = e.col
			if data != nil {
				data[dst+j] = e.w
			}
		}
	}
	return &CSR{N: n, IndPtr: indptr, Indices: indices, Data: data}
}

// NewSymmetricFromEdgesOrdered is NewSymmetricFromEdges followed by the
// named reordering pass: the cold-build counterpart of a locality-aware
// compaction. It returns the (possibly permuted) matrix together with the
// external↔internal id map — nil when the mode is the identity, so callers
// can skip translation entirely on unordered graphs.
func NewSymmetricFromEdgesOrdered(n int, edges [][2]int32, weights []float64, mode string) (*CSR, *Perm, error) {
	if !KnownReorder(mode) {
		return nil, nil, fmt.Errorf("sparse: unknown reorder mode %q", mode)
	}
	c, err := NewSymmetricFromEdges(n, edges, weights)
	if err != nil {
		return nil, nil, err
	}
	newID := OrderBy(c, mode)
	if newID == nil {
		return c, nil, nil
	}
	return c.Permute(newID), NewPerm(newID), nil
}
