package sparse

import (
	"runtime"
	"sync"
)

// The package keeps one long-lived worker pool shared by every row-parallel
// kernel (MulDenseInto today). Spawning goroutines per multiplication is
// cheap but not free: a serving engine calls MulDense thousands of times per
// second across concurrent queries, and a shared pool keeps the goroutine
// count bounded at GOMAXPROCS instead of queries×GOMAXPROCS.
var defaultPool = newWorkerPool(runtime.GOMAXPROCS(0))

type rowTask struct {
	fn     func(lo, hi int)
	lo, hi int
	wg     *sync.WaitGroup
}

type workerPool struct {
	tasks chan rowTask
	size  int
}

func newWorkerPool(size int) *workerPool {
	if size < 1 {
		size = 1
	}
	p := &workerPool{tasks: make(chan rowTask, 4*size), size: size}
	for i := 0; i < size; i++ {
		go p.worker()
	}
	return p
}

func (p *workerPool) worker() {
	for t := range p.tasks {
		t.fn(t.lo, t.hi)
		t.wg.Done()
	}
}

// ParallelRows splits [0, n) into one chunk per worker and runs fn on the
// shared pool, blocking until every chunk completes. fn must be safe to call
// concurrently on disjoint ranges. This is the package's own row-parallel
// primitive (MulDenseInto runs on it) exported for the execution layer
// (internal/exec), so every parallel kernel in the process shares one
// bounded goroutine pool instead of spawning its own.
func ParallelRows(n int, fn func(lo, hi int)) {
	defaultPool.parallelRowsLimit(n, 0, fn)
}

// ParallelRowsLimit is ParallelRows with the worker count capped at limit
// (0 or negative = no extra cap beyond GOMAXPROCS and the pool size).
// limit=1 degenerates to a plain sequential call — benchmark baselines use
// it to measure parallel speedup against identical code.
func ParallelRowsLimit(n, limit int, fn func(lo, hi int)) {
	defaultPool.parallelRowsLimit(n, limit, fn)
}

// MaxParallelWorkers reports how many chunks ParallelRowsLimit would use at
// most for a large n: the current GOMAXPROCS capped at the pool size (and at
// limit, when positive). Callers sizing per-chunk scratch use it.
func MaxParallelWorkers(limit int) int {
	workers := runtime.GOMAXPROCS(0)
	if workers > defaultPool.size {
		workers = defaultPool.size
	}
	if limit > 0 && workers > limit {
		workers = limit
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// parallelRows splits [0, n) into one chunk per worker and runs fn on the
// pool, blocking until every chunk completes. fn must be safe to call
// concurrently on disjoint ranges. Small inputs run inline: the fan-out
// overhead would dominate. The chunk count tracks the CURRENT GOMAXPROCS
// (capped at the pool size), so lowering the proc limit after init does not
// over-split work across contended threads.
func (p *workerPool) parallelRows(n int, fn func(lo, hi int)) {
	p.parallelRowsLimit(n, 0, fn)
}

func (p *workerPool) parallelRowsLimit(n, limit int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > p.size {
		workers = p.size
	}
	if limit > 0 && workers > limit {
		workers = limit
	}
	if workers > n {
		workers = 1
	}
	if workers == 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		p.tasks <- rowTask{fn: fn, lo: lo, hi: hi, wg: &wg}
	}
	wg.Wait()
}
