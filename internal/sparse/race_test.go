package sparse

import (
	"math"
	"math/rand/v2"
	"sync"
	"testing"

	"factorgraph/internal/dense"
)

// TestMulDenseConcurrent hammers the shared row-parallel worker pool with
// many simultaneous multiplications over one CSR matrix. Run with -race:
// it guards both the pool's task dispatch and the read-only sharing of the
// matrix across queries.
func TestMulDenseConcurrent(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 5))
	const n, k, deg = 500, 4, 8
	var coords []Coord
	for i := 0; i < n; i++ {
		for d := 0; d < deg; d++ {
			coords = append(coords, Coord{int32(i), int32(rng.IntN(n)), 1})
		}
	}
	w, err := NewFromCoords(n, coords)
	if err != nil {
		t.Fatal(err)
	}
	x := dense.New(n, k)
	for i := range x.Data {
		x.Data[i] = rng.Float64()
	}
	want := w.MulDense(x)

	const goros = 16
	var wg sync.WaitGroup
	results := make([]*dense.Matrix, goros)
	for g := 0; g < goros; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := dense.New(n, k)
			for rep := 0; rep < 20; rep++ {
				w.MulDenseInto(out, x)
			}
			results[g] = out
		}(g)
	}
	wg.Wait()
	for g, out := range results {
		if !dense.Equal(out, want, 0) {
			t.Errorf("goroutine %d: concurrent MulDense result differs", g)
		}
	}
}

// TestSpectralRadiusCachedConcurrent races many first-use callers of the
// memoized spectral radius; all must observe the same value, which must
// match the uncached computation.
func TestSpectralRadiusCachedConcurrent(t *testing.T) {
	edges := [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}}
	w, err := NewSymmetricFromEdges(4, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := w.SpectralRadius(50)
	const goros = 16
	got := make([]float64, goros)
	var wg sync.WaitGroup
	for g := 0; g < goros; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got[g] = w.SpectralRadiusCached(50)
		}(g)
	}
	wg.Wait()
	for g, v := range got {
		if math.Abs(v-want) > 1e-12 {
			t.Errorf("goroutine %d: cached ρ=%v, want %v", g, v, want)
		}
	}
	// Second call must hit the cache (same pointer value each time).
	if v := w.SpectralRadiusCached(50); v != got[0] {
		t.Errorf("cache not sticky: %v vs %v", v, got[0])
	}
	// A request for more iterations than cached must recompute, not return
	// the less-converged memo.
	precise := w.SpectralRadiusCached(200)
	if math.Abs(precise-w.SpectralRadius(200)) > 1e-12 {
		t.Errorf("higher-precision request served stale cache: %v", precise)
	}
}
