package sparse

import "math"

// SpectralRadius estimates ρ(W) by power iteration. W is symmetric in every
// use in this codebase (undirected adjacency), so its spectral radius equals
// its 2-norm and power iteration converges to it. This replaces the paper's
// PyAMG approximate eigensolver.
func (c *CSR) SpectralRadius(iters int) float64 {
	n := c.N
	if n == 0 || c.NNZ() == 0 {
		return 0
	}
	v := make([]float64, n)
	for i := range v {
		// All-ones start: deterministic, not orthogonal to the (nonnegative)
		// lead eigenvector in practice, and — unlike any index-dependent
		// start — invariant under node reordering, so a permuted graph
		// derives the same ρ(W) as its unordered twin up to float
		// reassociation noise. Belief parity across reorderings relies on ε
		// matching this tightly.
		v[i] = 1
	}
	normalize(v)
	var lambda float64
	for it := 0; it < iters; it++ {
		w := c.MulVec(v)
		l := norm(w)
		if l == 0 {
			return 0
		}
		for i := range w {
			w[i] /= l
		}
		copy(v, w)
		lambda = l
	}
	return lambda
}

// rhoMemo records a memoized spectral radius together with the iteration
// budget it was computed under.
type rhoMemo struct {
	iters int
	rho   float64
}

// SpectralRadiusCached returns ρ(W), computing it with SpectralRadius on
// first use and memoizing the result on the matrix. A long-lived serving
// engine calls this on every propagation; the power iteration — O(m·iters)
// — runs once per matrix instead. A request for MORE iterations than the
// cached value used recomputes and upgrades the cache, so mixed-precision
// callers never silently receive a less-converged estimate. Safe for
// concurrent callers: a race at worst recomputes the same deterministic
// value.
func (c *CSR) SpectralRadiusCached(iters int) float64 {
	if p := c.rho.Load(); p != nil && p.iters >= iters {
		return p.rho
	}
	r := c.SpectralRadius(iters)
	memo := &rhoMemo{iters: iters, rho: r}
	// CAS loop so a concurrent lower-precision computation can never
	// overwrite a higher-precision memo.
	for {
		p := c.rho.Load()
		if p != nil && p.iters >= iters {
			return p.rho
		}
		if c.rho.CompareAndSwap(p, memo) {
			return r
		}
	}
}

func norm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func normalize(v []float64) {
	l := norm(v)
	if l == 0 {
		return
	}
	for i := range v {
		v[i] /= l
	}
}
