package sparse

import "math"

// SpectralRadius estimates ρ(W) by power iteration. W is symmetric in every
// use in this codebase (undirected adjacency), so its spectral radius equals
// its 2-norm and power iteration converges to it. This replaces the paper's
// PyAMG approximate eigensolver.
func (c *CSR) SpectralRadius(iters int) float64 {
	n := c.N
	if n == 0 || c.NNZ() == 0 {
		return 0
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = 1 + float64(i%13)/13 // deterministic, not orthogonal to the lead eigenvector in practice
	}
	normalize(v)
	var lambda float64
	for it := 0; it < iters; it++ {
		w := c.MulVec(v)
		l := norm(w)
		if l == 0 {
			return 0
		}
		for i := range w {
			w[i] /= l
		}
		copy(v, w)
		lambda = l
	}
	return lambda
}

func norm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func normalize(v []float64) {
	l := norm(v)
	if l == 0 {
		return
	}
	for i := range v {
		v[i] /= l
	}
}
