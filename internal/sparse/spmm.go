package sparse

import (
	"fmt"

	"factorgraph/internal/dense"
)

// Tiling parameters for the blocked SpMM. The column tile is sized so the
// slice of x-rows a tile can touch fits comfortably in L2 (256 KiB of
// float64 payload); row blocks bound the per-worker cursor state and keep
// out-rows register/L1 resident across a tile sweep.
const (
	spmmTileBytes = 1 << 18 // x-row bytes addressable per column tile
	spmmRowBlock  = 128     // rows processed per cursor block

	// Below these, the whole x matrix fits in cache anyway (or the nnz is
	// too small to amortize cursor bookkeeping) and the simple row-scan
	// kernel wins.
	spmmTiledMinXBytes = 1 << 19
	spmmTiledMinNNZ    = 1 << 15

	// MulVec goes row-parallel past this nnz; under it the fan-out
	// overhead dominates a single sequential scan.
	mulVecParallelNNZ = 1 << 14

	// Widest X for the register-blocked kernel: per-row accumulators live
	// in named scalars (the compiler keeps them in FP registers), so each
	// width needs its own specialization. LinBP class counts are small —
	// 2..4 covers the serving workloads; wider matrices go to the tiled or
	// flat-scan kernels.
	spmmRegMaxCols = 4
)

// MulDenseIntoSimple computes out = W × X with the seed-era kernel: one
// flat scan per row, parallelized over row chunks. It remains exported as
// the benchmark baseline for the tiled kernel and as the small-input fast
// path (MulDenseInto dispatches here when X fits in cache).
func (c *CSR) MulDenseIntoSimple(out, x *dense.Matrix) {
	c.checkMulDenseShapes(out, x)
	k := x.Cols
	defaultPool.parallelRows(c.N, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			orow := out.Data[i*k : (i+1)*k]
			for j := range orow {
				orow[j] = 0
			}
			start, end := c.IndPtr[i], c.IndPtr[i+1]
			if c.Data == nil {
				for _, col := range c.Indices[start:end] {
					xrow := x.Data[int(col)*k : int(col+1)*k]
					for j, v := range xrow {
						orow[j] += v
					}
				}
			} else {
				for p := start; p < end; p++ {
					wv := c.Data[p]
					xrow := x.Data[int(c.Indices[p])*k : int(c.Indices[p]+1)*k]
					for j, v := range xrow {
						orow[j] += wv * v
					}
				}
			}
		}
	})
}

// mulDenseReg is the register-blocked kernel for narrow X (k ≤
// spmmRegMaxCols), the LinBP serving regime. The flat scan accumulates
// through out's memory rows — every entry pays a store-to-load forward and
// two bounds checks — while this kernel keeps the row's k partial sums in
// named scalars that live in FP registers for the whole row scan, storing
// once per row. The accumulation order per lane is exactly the flat scan's,
// so the result is bit-identical to MulDenseIntoSimple; measured ~2.4×
// on a 200k-node degree-10 graph at k=3..4.
func (c *CSR) mulDenseReg(out, x *dense.Matrix) {
	switch x.Cols {
	case 2:
		defaultPool.parallelRows(c.N, func(lo, hi int) { c.regRows2(out, x, lo, hi) })
	case 3:
		defaultPool.parallelRows(c.N, func(lo, hi int) { c.regRows3(out, x, lo, hi) })
	case 4:
		defaultPool.parallelRows(c.N, func(lo, hi int) { c.regRows4(out, x, lo, hi) })
	default:
		c.MulDenseIntoSimple(out, x)
	}
}

func (c *CSR) regRows2(out, x *dense.Matrix, lo, hi int) {
	xd, od := x.Data, out.Data
	for i := lo; i < hi; i++ {
		var a0, a1 float64
		start, end := c.IndPtr[i], c.IndPtr[i+1]
		if c.Data == nil {
			for _, col := range c.Indices[start:end] {
				b := int(col) * 2
				xr := xd[b : b+2 : b+2]
				a0 += xr[0]
				a1 += xr[1]
			}
		} else {
			for p := start; p < end; p++ {
				wv := c.Data[p]
				b := int(c.Indices[p]) * 2
				xr := xd[b : b+2 : b+2]
				a0 += wv * xr[0]
				a1 += wv * xr[1]
			}
		}
		or := od[i*2 : i*2+2 : i*2+2]
		or[0], or[1] = a0, a1
	}
}

func (c *CSR) regRows3(out, x *dense.Matrix, lo, hi int) {
	xd, od := x.Data, out.Data
	for i := lo; i < hi; i++ {
		var a0, a1, a2 float64
		start, end := c.IndPtr[i], c.IndPtr[i+1]
		if c.Data == nil {
			for _, col := range c.Indices[start:end] {
				b := int(col) * 3
				xr := xd[b : b+3 : b+3]
				a0 += xr[0]
				a1 += xr[1]
				a2 += xr[2]
			}
		} else {
			for p := start; p < end; p++ {
				wv := c.Data[p]
				b := int(c.Indices[p]) * 3
				xr := xd[b : b+3 : b+3]
				a0 += wv * xr[0]
				a1 += wv * xr[1]
				a2 += wv * xr[2]
			}
		}
		or := od[i*3 : i*3+3 : i*3+3]
		or[0], or[1], or[2] = a0, a1, a2
	}
}

func (c *CSR) regRows4(out, x *dense.Matrix, lo, hi int) {
	xd, od := x.Data, out.Data
	for i := lo; i < hi; i++ {
		var a0, a1, a2, a3 float64
		start, end := c.IndPtr[i], c.IndPtr[i+1]
		if c.Data == nil {
			for _, col := range c.Indices[start:end] {
				b := int(col) * 4
				xr := xd[b : b+4 : b+4]
				a0 += xr[0]
				a1 += xr[1]
				a2 += xr[2]
				a3 += xr[3]
			}
		} else {
			for p := start; p < end; p++ {
				wv := c.Data[p]
				b := int(c.Indices[p]) * 4
				xr := xd[b : b+4 : b+4]
				a0 += wv * xr[0]
				a1 += wv * xr[1]
				a2 += wv * xr[2]
				a3 += wv * xr[3]
			}
		}
		or := od[i*4 : i*4+4 : i*4+4]
		or[0], or[1], or[2], or[3] = a0, a1, a2, a3
	}
}

// mulDenseTiled is the blocked kernel: each worker walks its rows in blocks
// of spmmRowBlock, sweeping column tiles sized so the x-rows a tile can
// reference stay L2-resident while every row of the block drains its
// entries falling inside the tile. Because column indices are sorted within
// a row, visiting tiles in ascending order accumulates each row's terms in
// exactly the flat-scan order — the result is bit-identical to
// MulDenseIntoSimple, only the memory access pattern changes.
func (c *CSR) mulDenseTiled(out, x *dense.Matrix) {
	k := x.Cols
	tileCols := spmmTileBytes / (8 * k)
	if tileCols < 1024 {
		tileCols = 1024
	}
	defaultPool.parallelRows(c.N, func(lo, hi int) {
		var cur [spmmRowBlock]int
		for blo := lo; blo < hi; blo += spmmRowBlock {
			bhi := blo + spmmRowBlock
			if bhi > hi {
				bhi = hi
			}
			// Zero the block's out-rows and latch cursors; track the
			// block's column span so empty tiles are skipped outright.
			minCol, maxCol := c.N, 0
			for i := blo; i < bhi; i++ {
				orow := out.Data[i*k : (i+1)*k]
				for j := range orow {
					orow[j] = 0
				}
				s, e := c.IndPtr[i], c.IndPtr[i+1]
				cur[i-blo] = s
				if s < e {
					if fc := int(c.Indices[s]); fc < minCol {
						minCol = fc
					}
					if lc := int(c.Indices[e-1]); lc > maxCol {
						maxCol = lc
					}
				}
			}
			if minCol > maxCol {
				continue
			}
			for tile := (minCol / tileCols) * tileCols; tile <= maxCol; tile += tileCols {
				tileEnd := int32(tile + tileCols)
				for i := blo; i < bhi; i++ {
					p, end := cur[i-blo], c.IndPtr[i+1]
					if p >= end || c.Indices[p] >= tileEnd {
						continue
					}
					orow := out.Data[i*k : (i+1)*k]
					if c.Data == nil {
						for p < end && c.Indices[p] < tileEnd {
							xrow := x.Data[int(c.Indices[p])*k : int(c.Indices[p]+1)*k]
							for j, v := range xrow {
								orow[j] += v
							}
							p++
						}
					} else {
						for p < end && c.Indices[p] < tileEnd {
							wv := c.Data[p]
							xrow := x.Data[int(c.Indices[p])*k : int(c.Indices[p]+1)*k]
							for j, v := range xrow {
								orow[j] += wv * v
							}
							p++
						}
					}
					cur[i-blo] = p
				}
			}
		}
	})
}

// MulDenseInto32 computes out = W × X in float32: the opt-in belief tier
// for memory-bandwidth-bound graphs (EngineOptions.F32Beliefs). Halving the
// element width halves the bytes every row scan streams. Accumulation is
// float32 too, so the result drifts from the float64 kernel by O(deg·ulp32)
// per entry — the engine documents and tests a ≤1e-3 end-to-end belief
// bound for the centered LinBP iterates this feeds.
func (c *CSR) MulDenseInto32(out, x *dense.Matrix32) {
	if x.Rows != c.N {
		panic(fmt.Sprintf("sparse: MulDenseInto32 shape mismatch: W is %d×%d, X has %d rows", c.N, c.N, x.Rows))
	}
	if out.Rows != c.N || out.Cols != x.Cols {
		panic(fmt.Sprintf("sparse: MulDenseInto32 bad out shape %d×%d, want %d×%d", out.Rows, out.Cols, c.N, x.Cols))
	}
	k := x.Cols
	switch k {
	case 2:
		defaultPool.parallelRows(c.N, func(lo, hi int) { c.regRows32x2(out, x, lo, hi) })
		return
	case 3:
		defaultPool.parallelRows(c.N, func(lo, hi int) { c.regRows32x3(out, x, lo, hi) })
		return
	case 4:
		defaultPool.parallelRows(c.N, func(lo, hi int) { c.regRows32x4(out, x, lo, hi) })
		return
	}
	defaultPool.parallelRows(c.N, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			orow := out.Data[i*k : (i+1)*k]
			for j := range orow {
				orow[j] = 0
			}
			start, end := c.IndPtr[i], c.IndPtr[i+1]
			if c.Data == nil {
				for _, col := range c.Indices[start:end] {
					xrow := x.Data[int(col)*k : int(col+1)*k]
					for j, v := range xrow {
						orow[j] += v
					}
				}
			} else {
				for p := start; p < end; p++ {
					wv := float32(c.Data[p])
					xrow := x.Data[int(c.Indices[p])*k : int(c.Indices[p]+1)*k]
					for j, v := range xrow {
						orow[j] += wv * v
					}
				}
			}
		}
	})
}

// regRows32x2..x4 are the float32 twins of regRows2..4: same register
// accumulation, same per-lane order (bit-identical to the generic f32 scan).

func (c *CSR) regRows32x2(out, x *dense.Matrix32, lo, hi int) {
	xd, od := x.Data, out.Data
	for i := lo; i < hi; i++ {
		var a0, a1 float32
		start, end := c.IndPtr[i], c.IndPtr[i+1]
		if c.Data == nil {
			for _, col := range c.Indices[start:end] {
				b := int(col) * 2
				xr := xd[b : b+2 : b+2]
				a0 += xr[0]
				a1 += xr[1]
			}
		} else {
			for p := start; p < end; p++ {
				wv := float32(c.Data[p])
				b := int(c.Indices[p]) * 2
				xr := xd[b : b+2 : b+2]
				a0 += wv * xr[0]
				a1 += wv * xr[1]
			}
		}
		or := od[i*2 : i*2+2 : i*2+2]
		or[0], or[1] = a0, a1
	}
}

func (c *CSR) regRows32x3(out, x *dense.Matrix32, lo, hi int) {
	xd, od := x.Data, out.Data
	for i := lo; i < hi; i++ {
		var a0, a1, a2 float32
		start, end := c.IndPtr[i], c.IndPtr[i+1]
		if c.Data == nil {
			for _, col := range c.Indices[start:end] {
				b := int(col) * 3
				xr := xd[b : b+3 : b+3]
				a0 += xr[0]
				a1 += xr[1]
				a2 += xr[2]
			}
		} else {
			for p := start; p < end; p++ {
				wv := float32(c.Data[p])
				b := int(c.Indices[p]) * 3
				xr := xd[b : b+3 : b+3]
				a0 += wv * xr[0]
				a1 += wv * xr[1]
				a2 += wv * xr[2]
			}
		}
		or := od[i*3 : i*3+3 : i*3+3]
		or[0], or[1], or[2] = a0, a1, a2
	}
}

func (c *CSR) regRows32x4(out, x *dense.Matrix32, lo, hi int) {
	xd, od := x.Data, out.Data
	for i := lo; i < hi; i++ {
		var a0, a1, a2, a3 float32
		start, end := c.IndPtr[i], c.IndPtr[i+1]
		if c.Data == nil {
			for _, col := range c.Indices[start:end] {
				b := int(col) * 4
				xr := xd[b : b+4 : b+4]
				a0 += xr[0]
				a1 += xr[1]
				a2 += xr[2]
				a3 += xr[3]
			}
		} else {
			for p := start; p < end; p++ {
				wv := float32(c.Data[p])
				b := int(c.Indices[p]) * 4
				xr := xd[b : b+4 : b+4]
				a0 += wv * xr[0]
				a1 += wv * xr[1]
				a2 += wv * xr[2]
				a3 += wv * xr[3]
			}
		}
		or := od[i*4 : i*4+4 : i*4+4]
		or[0], or[1], or[2], or[3] = a0, a1, a2, a3
	}
}

func (c *CSR) checkMulDenseShapes(out, x *dense.Matrix) {
	if x.Rows != c.N {
		panic(fmt.Sprintf("sparse: MulDense shape mismatch: W is %d×%d, X has %d rows", c.N, c.N, x.Rows))
	}
	if out.Rows != c.N || out.Cols != x.Cols {
		panic(fmt.Sprintf("sparse: MulDenseInto bad out shape %d×%d, want %d×%d", out.Rows, out.Cols, c.N, x.Cols))
	}
}
