package sparse

import (
	"math"
	"math/rand"
	"testing"

	"factorgraph/internal/dense"
)

// randSpmmCSR plants a random symmetric graph; weighted draws uniform edge
// weights so the c.Data != nil kernel paths are exercised too.
func randSpmmCSR(t *testing.T, n, m int, weighted bool, seed int64) *CSR {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	set := make(map[[2]int32]bool, m)
	edges := make([][2]int32, 0, m)
	for len(edges) < m {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if set[[2]int32{u, v}] {
			continue
		}
		set[[2]int32{u, v}] = true
		edges = append(edges, [2]int32{u, v})
	}
	var weights []float64
	if weighted {
		weights = make([]float64, len(edges))
		for i := range weights {
			weights[i] = 0.1 + rng.Float64()
		}
	}
	c, err := NewSymmetricFromEdges(n, edges, weights)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func randX(n, k int, seed int64) *dense.Matrix {
	rng := rand.New(rand.NewSource(seed))
	x := dense.New(n, k)
	for i := range x.Data {
		x.Data[i] = rng.Float64() - 0.5
	}
	return x
}

// TestMulDenseKernelsBitIdentical pins the dispatch contract: every kernel
// MulDenseInto can route to — register-blocked (k ≤ 4), column-tiled, flat
// scan — produces bit-identical output, because they all accumulate each
// row's terms in the same flat-scan order. Weighted and unweighted.
func TestMulDenseKernelsBitIdentical(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		c := randSpmmCSR(t, 3000, 15000, weighted, 5)
		for k := 1; k <= 6; k++ {
			x := randX(c.N, k, int64(k))
			want := dense.New(c.N, k)
			c.MulDenseIntoSimple(want, x)

			got := dense.New(c.N, k)
			c.MulDenseInto(got, x) // k ≤ 4 → register-blocked
			for i := range want.Data {
				if want.Data[i] != got.Data[i] {
					t.Fatalf("weighted=%v k=%d: MulDenseInto differs from flat scan at %d: %v vs %v",
						weighted, k, i, got.Data[i], want.Data[i])
				}
			}

			tiled := dense.New(c.N, k)
			c.mulDenseTiled(tiled, x) // forced, below the dispatch thresholds
			for i := range want.Data {
				if want.Data[i] != tiled.Data[i] {
					t.Fatalf("weighted=%v k=%d: tiled differs from flat scan at %d: %v vs %v",
						weighted, k, i, tiled.Data[i], want.Data[i])
				}
			}
		}
	}
}

// TestMulDenseInto32Accuracy bounds the float32 tier against the float64
// kernel on a random 15k-edge graph: per-entry drift is O(deg·ulp32), far
// inside 1e-4 here. Covers both the register-blocked (k ≤ 4) and generic
// f32 scans, weighted and unweighted.
func TestMulDenseInto32Accuracy(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		c := randSpmmCSR(t, 3000, 15000, weighted, 7)
		for k := 2; k <= 6; k++ {
			x := randX(c.N, k, int64(10+k))
			want := dense.New(c.N, k)
			c.MulDenseIntoSimple(want, x)

			x32, y32 := dense.New32(c.N, k), dense.New32(c.N, k)
			for i, v := range x.Data {
				x32.Data[i] = float32(v)
			}
			c.MulDenseInto32(y32, x32)
			for i := range want.Data {
				if d := math.Abs(want.Data[i] - float64(y32.Data[i])); d > 1e-4 {
					t.Fatalf("weighted=%v k=%d: f32 kernel off by %g at %d", weighted, k, d, i)
				}
			}
		}
	}
}

// TestMulVecParallelBitIdentical crosses the mulVecParallelNNZ cutoff and
// checks the row-parallel scan against a test-local sequential reference —
// rows are independent sums, so parallelism must be invisible bit-for-bit.
func TestMulVecParallelBitIdentical(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		c := randSpmmCSR(t, 6000, 12000, weighted, 9) // 24k nnz ≥ 1<<14
		if c.NNZ() < mulVecParallelNNZ {
			t.Fatalf("fixture nnz %d below the parallel cutoff %d", c.NNZ(), mulVecParallelNNZ)
		}
		rng := rand.New(rand.NewSource(3))
		v := make([]float64, c.N)
		for i := range v {
			v[i] = rng.Float64() - 0.5
		}
		want := make([]float64, c.N)
		for i := 0; i < c.N; i++ {
			var s float64
			for p := c.IndPtr[i]; p < c.IndPtr[i+1]; p++ {
				w := 1.0
				if c.Data != nil {
					w = c.Data[p]
				}
				s += w * v[c.Indices[p]]
			}
			want[i] = s
		}
		got := c.MulVec(v)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("weighted=%v: MulVec differs at row %d: %v vs %v", weighted, i, got[i], want[i])
			}
		}
	}
}
