package telemetry

import "testing"

// BenchmarkTelemetryOverhead pins the per-event cost of the hot-path
// primitives, instrumented (enabled) vs no-op (disabled). The instrumented
// counter increment is one atomic add; disabled it is one atomic load.
// These numbers bound what any single instrumentation point can add to a
// serving hot path.
func BenchmarkTelemetryOverhead(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_ops_total", "ops")
	h := r.Histogram("bench_dur_seconds", "dur", nil)

	b.Run("counter/enabled", func(b *testing.B) {
		SetEnabled(true)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("counter/disabled", func(b *testing.B) {
		SetEnabled(false)
		defer SetEnabled(true)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("histogram/enabled", func(b *testing.B) {
		SetEnabled(true)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(0.003)
		}
	})
	b.Run("histogram/disabled", func(b *testing.B) {
		SetEnabled(false)
		defer SetEnabled(true)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(0.003)
		}
	})
	b.Run("timed-section/enabled", func(b *testing.B) {
		SetEnabled(true)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			start := Now()
			h.ObserveSince(start)
		}
	})
	b.Run("timed-section/disabled", func(b *testing.B) {
		SetEnabled(false)
		defer SetEnabled(true)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			start := Now()
			h.ObserveSince(start)
		}
	})
}
