package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync/atomic"
)

// WriteText renders the registry in the Prometheus text exposition format
// (version 0.0.4): one HELP/TYPE header per family, series sorted by name
// then label string, histogram series expanded to cumulative _bucket rows
// plus _sum and _count. The snapshot is per-series atomic, not global —
// concurrent increments may land between two series — which is the usual
// scrape contract.
func (r *Registry) WriteText(w io.Writer) error {
	// Snapshot families AND their series maps under the lock: RemoveSeries
	// (vec eviction, graph DELETE) mutates f.series concurrently with
	// scrapes. The series handles themselves are atomic, so rendering
	// outside the lock stays safe once the map contents are copied.
	type famSnap struct {
		name, help, kind string
		keys             []string
		series           map[string]any
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]famSnap, len(names))
	for i, name := range names {
		f := r.fams[name]
		snap := famSnap{name: f.name, help: f.help, kind: f.kind,
			keys:   make([]string, 0, len(f.series)),
			series: make(map[string]any, len(f.series))}
		for k, s := range f.series {
			snap.keys = append(snap.keys, k)
			snap.series[k] = s
		}
		fams[i] = snap
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		keys := f.keys
		sort.Strings(keys)
		for _, key := range keys {
			switch s := f.series[key].(type) {
			case *Counter:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, braced(key), formatFloat(float64(s.Value())))
			case *FloatCounter:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, braced(key), formatFloat(s.Value()))
			case *Gauge:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, braced(key), formatFloat(s.Value()))
			case *Histogram:
				cum := int64(0)
				for i := range s.counts {
					le := "+Inf"
					if i < len(s.bounds) {
						le = formatFloat(s.bounds[i])
					}
					cum += s.counts[i].Load()
					fmt.Fprintf(bw, "%s_bucket%s %d%s\n", f.name, bracedLE(key, le), cum, exemplarSuffix(s.exemplars, i))
				}
				fmt.Fprintf(bw, "%s_sum%s %s\n", f.name, braced(key), formatFloat(s.Sum()))
				fmt.Fprintf(bw, "%s_count%s %d\n", f.name, braced(key), s.Count())
			}
		}
	}
	return bw.Flush()
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func bracedLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return "{" + labels + `,le="` + le + `"}`
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// exemplarSuffix renders bucket i's exemplar, OpenMetrics-style
// (` # {trace_id="..."} <value> <unix-seconds>`), or "" when the bucket has
// none. The suffix rides on the Prometheus 0.0.4 text line; parsers that
// predate exemplars must split on '#' (ParseTextTotals does).
func exemplarSuffix(exemplars []atomic.Pointer[exemplar], i int) string {
	if i >= len(exemplars) {
		return ""
	}
	e := exemplars[i].Load()
	if e == nil {
		return ""
	}
	return fmt.Sprintf(` # {trace_id="%s"} %s %s`, e.traceID, formatFloat(e.value),
		strconv.FormatFloat(float64(e.ts.UnixNano())/1e9, 'f', 3, 64))
}

// Handler returns an http.Handler serving the registry in the Prometheus
// text format; mount it at GET /metrics.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
