package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
)

// WriteText renders the registry in the Prometheus text exposition format
// (version 0.0.4): one HELP/TYPE header per family, series sorted by name
// then label string, histogram series expanded to cumulative _bucket rows
// plus _sum and _count. The snapshot is per-series atomic, not global —
// concurrent increments may land between two series — which is the usual
// scrape contract.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.fams[name]
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, key := range keys {
			switch s := f.series[key].(type) {
			case *Counter:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, braced(key), formatFloat(float64(s.Value())))
			case *Gauge:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, braced(key), formatFloat(s.Value()))
			case *Histogram:
				cum := int64(0)
				for i, b := range s.bounds {
					cum += s.counts[i].Load()
					fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, bracedLE(key, formatFloat(b)), cum)
				}
				cum += s.counts[len(s.bounds)].Load()
				fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, bracedLE(key, "+Inf"), cum)
				fmt.Fprintf(bw, "%s_sum%s %s\n", f.name, braced(key), formatFloat(s.Sum()))
				fmt.Fprintf(bw, "%s_count%s %d\n", f.name, braced(key), s.Count())
			}
		}
	}
	return bw.Flush()
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func bracedLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return "{" + labels + `,le="` + le + `"}`
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry in the Prometheus
// text format; mount it at GET /metrics.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
