// Package telemetry is the serving stack's runtime measurement substrate:
// atomic counters, gauges and fixed-bucket latency histograms with a
// Prometheus-text-format exporter, plus a lightweight per-request stage
// trace (trace.go). It is dependency-free and allocation-free on the hot
// path: every metric is registered once at package init of the layer that
// owns it, and an increment or observation after that is a handful of
// atomic operations on a pre-resolved handle — no map lookup, no label
// hashing, no allocation.
//
// Layers register their series on the process-global Default() registry;
// the HTTP layer exports it at GET /metrics. SetEnabled(false) turns every
// handle into a no-op behind one atomic load, which is what the overhead
// acceptance test and BenchmarkTelemetryOverhead toggle to measure the
// instrumented-vs-bare cost of the hot paths.
package telemetry

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

var enabledFlag atomic.Bool

func init() { enabledFlag.Store(true) }

// Enabled reports whether metric recording is on (the default).
func Enabled() bool { return enabledFlag.Load() }

// SetEnabled toggles all metric recording process-wide. Registration is
// unaffected; handles simply drop increments and observations while off.
func SetEnabled(v bool) { enabledFlag.Store(v) }

// Now returns time.Now() when telemetry is enabled and the zero time
// otherwise, so hot paths pay no clock read while disabled. Pair with
// Histogram.ObserveSince, which ignores a zero start.
func Now() time.Time {
	if !enabledFlag.Load() {
		return time.Time{}
	}
	return time.Now()
}

// Labels is a fixed label set attached to one series at registration time.
// There is no dynamic labeling: each distinct label combination is its own
// pre-registered handle, which is what keeps the hot path a bare atomic.
type Labels map[string]string

// DefBuckets are the default latency histogram bounds in seconds, spanning
// sub-millisecond classify responses to multi-second cold builds.
var DefBuckets = []float64{
	100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10,
}

// MicroBuckets extend DefBuckets downward for micro-scale sections (lock
// waits, epoch swaps) that routinely finish in single-digit microseconds.
var MicroBuckets = []float64{
	1e-6, 5e-6, 10e-6, 25e-6, 50e-6,
	100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5,
}

// Counter is a monotonically increasing series.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be non-negative to keep the series monotone).
func (c *Counter) Add(n int64) {
	if !enabledFlag.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// FloatCounter is a monotonically increasing float64 series — for
// accumulated seconds (flush time, lock-wait time) where an int64 counter
// would lose the fraction. Exported with kind "counter".
type FloatCounter struct{ bits atomic.Uint64 }

// Add accumulates v (v must be non-negative to keep the series monotone;
// negative values are dropped).
func (c *FloatCounter) Add(v float64) {
	if v <= 0 || !enabledFlag.Load() {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the accumulated total.
func (c *FloatCounter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a float64 value that can go up and down (resident bytes,
// in-flight requests, overlay fraction).
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value. Unlike increments, Set is not gated on Enabled:
// a gauge records state, not work, and a stale gauge after re-enabling
// would misreport.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the value by d (CAS loop; d may be negative).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution. Bounds are upper-inclusive
// bucket edges; an implicit +Inf bucket catches the rest. Counts are
// per-bucket (cumulated only at export), so concurrent observations touch
// exactly one bucket counter plus the sum and count.
type Histogram struct {
	bounds    []float64
	counts    []atomic.Int64 // len(bounds)+1; last is +Inf
	sum       atomic.Uint64  // float64 bits, CAS-accumulated
	count     atomic.Int64
	exemplars []atomic.Pointer[exemplar] // len(bounds)+1, lazily populated
}

// exemplar links one observed value in a bucket to the trace that produced
// it, rendered OpenMetrics-style after the bucket line. The newest
// observation with a trace id wins — the point is "give me ONE concrete
// trace behind this bucket", not a reservoir.
type exemplar struct {
	traceID string
	value   float64
	ts      time.Time
}

// bucketIdx returns the index of the bucket v falls into.
func (h *Histogram) bucketIdx(v float64) int {
	for i, b := range h.bounds {
		if v <= b {
			return i
		}
	}
	return len(h.bounds)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if !enabledFlag.Load() {
		return
	}
	h.counts[h.bucketIdx(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveExemplar records one value and, when traceID is non-empty, tags
// the bucket it lands in with an exemplar linking to that trace. An empty
// traceID degrades to a plain Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if !enabledFlag.Load() {
		return
	}
	if traceID != "" {
		h.exemplars[h.bucketIdx(v)].Store(&exemplar{traceID: traceID, value: v, ts: time.Now()})
	}
	h.Observe(v)
}

// ObserveSince records the seconds elapsed since start; a zero start (from
// Now() while disabled) is ignored.
func (h *Histogram) ObserveSince(start time.Time) {
	if start.IsZero() {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Registry holds metric families by name. Registration takes a lock;
// the returned handles never do.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

type family struct {
	name, help, kind string
	bounds           []float64 // histograms only
	series           map[string]any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-global registry every layer registers on and
// the serving mux exports.
func Default() *Registry { return defaultRegistry }

// canonLabels renders a label set in sorted key order; this is both the
// dedup key and the exposition string.
func canonLabels(l Labels) string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l[k]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func (r *Registry) familyFor(name, help, kind string, bounds []float64) *family {
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, bounds: bounds, series: make(map[string]any)}
		r.fams[name] = f
		return f
	}
	if f.kind != kind {
		panic("telemetry: metric " + name + " re-registered as " + kind + ", was " + f.kind)
	}
	return f
}

// Counter registers (or returns the existing) counter series name{labels}.
func (r *Registry) Counter(name, help string, labels ...Labels) *Counter {
	key := canonLabels(merge(labels))
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, "counter", nil)
	if s, ok := f.series[key]; ok {
		return s.(*Counter)
	}
	c := &Counter{}
	f.series[key] = c
	return c
}

// Gauge registers (or returns the existing) gauge series name{labels}.
func (r *Registry) Gauge(name, help string, labels ...Labels) *Gauge {
	key := canonLabels(merge(labels))
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, "gauge", nil)
	if s, ok := f.series[key]; ok {
		return s.(*Gauge)
	}
	g := &Gauge{}
	f.series[key] = g
	return g
}

// Histogram registers (or returns the existing) histogram series
// name{labels} with the given bucket bounds (nil = DefBuckets). All series
// of one family share the bounds of the first registration.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Labels) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	key := canonLabels(merge(labels))
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, "histogram", bounds)
	if s, ok := f.series[key]; ok {
		return s.(*Histogram)
	}
	h := &Histogram{
		bounds:    f.bounds,
		counts:    make([]atomic.Int64, len(f.bounds)+1),
		exemplars: make([]atomic.Pointer[exemplar], len(f.bounds)+1),
	}
	f.series[key] = h
	return h
}

// FloatCounter registers (or returns the existing) float counter series
// name{labels}.
func (r *Registry) FloatCounter(name, help string, labels ...Labels) *FloatCounter {
	key := canonLabels(merge(labels))
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, "counter", nil)
	if s, ok := f.series[key]; ok {
		return s.(*FloatCounter)
	}
	c := &FloatCounter{}
	f.series[key] = c
	return c
}

// RemoveSeries unregisters the series name{labels} from exposition. A
// handle already held for it keeps accepting updates but is no longer
// rendered; registering the same name+labels again creates a fresh series.
// This is what lets bounded-cardinality vectors (vec.go) release a dynamic
// label value when its owner goes away.
func (r *Registry) RemoveSeries(name string, labels ...Labels) {
	key := canonLabels(merge(labels))
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		return
	}
	delete(f.series, key)
	if len(f.series) == 0 {
		delete(r.fams, name)
	}
}

func merge(ls []Labels) Labels {
	switch len(ls) {
	case 0:
		return nil
	case 1:
		return ls[0]
	}
	out := make(Labels)
	for _, l := range ls {
		for k, v := range l {
			out[k] = v
		}
	}
	return out
}
