package telemetry

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestTextFormatGolden pins the exact Prometheus text exposition: HELP/TYPE
// headers, sorted families and series, cumulative histogram buckets with
// the implicit +Inf, and _sum/_count rows.
func TestTextFormatGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Total requests.", Labels{"route": "classify"})
	c.Add(3)
	c2 := r.Counter("test_requests_total", "Total requests.", Labels{"route": "labels"})
	c2.Add(1)
	g := r.Gauge("test_in_flight", "In-flight requests.")
	g.Set(2.5)
	h := r.Histogram("test_latency_seconds", "Request latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(5)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_in_flight In-flight requests.
# TYPE test_in_flight gauge
test_in_flight 2.5
# HELP test_latency_seconds Request latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.01"} 1
test_latency_seconds_bucket{le="0.1"} 3
test_latency_seconds_bucket{le="1"} 3
test_latency_seconds_bucket{le="+Inf"} 4
test_latency_seconds_sum 5.105
test_latency_seconds_count 4
# HELP test_requests_total Total requests.
# TYPE test_requests_total counter
test_requests_total{route="classify"} 3
test_requests_total{route="labels"} 1
`
	if got := b.String(); got != want {
		t.Errorf("text format mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestParseTextTotalsRoundTrip checks the scrape-side parser against the
// exporter's own output.
func TestParseTextTotalsRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("rt_ops_total", "ops", Labels{"kind": "a"}).Add(7)
	r.Counter("rt_ops_total", "ops", Labels{"kind": "b"}).Add(5)
	r.Gauge("rt_bytes", "bytes").Set(1 << 20)
	h := r.Histogram("rt_dur_seconds", "dur", []float64{0.1, 1})
	h.Observe(0.5)
	h.Observe(2)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	totals, err := ParseTextTotals(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got := totals["rt_ops_total"]; got != 12 {
		t.Errorf("rt_ops_total = %v, want 12 (summed across labels)", got)
	}
	if got := totals["rt_bytes"]; got != 1<<20 {
		t.Errorf("rt_bytes = %v, want %v", got, 1<<20)
	}
	if got := totals["rt_dur_seconds_count"]; got != 2 {
		t.Errorf("rt_dur_seconds_count = %v, want 2", got)
	}
	if got := totals["rt_dur_seconds_sum"]; math.Abs(got-2.5) > 1e-12 {
		t.Errorf("rt_dur_seconds_sum = %v, want 2.5", got)
	}
}

// TestRegistrationDedup checks that re-registering the same name+labels
// returns the same handle, and that label order does not matter.
func TestRegistrationDedup(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dedup_total", "x", Labels{"a": "1", "b": "2"})
	b := r.Counter("dedup_total", "x", Labels{"b": "2", "a": "1"})
	if a != b {
		t.Error("same name+labels registered twice returned distinct handles")
	}
	c := r.Counter("dedup_total", "x", Labels{"a": "1", "b": "3"})
	if a == c {
		t.Error("distinct labels returned the same handle")
	}
}

// TestConcurrentMetrics hammers one counter, one gauge and one histogram
// from many goroutines while a scraper renders the registry; run under
// -race this is the data-race acceptance test, and the final counts prove
// no increment was lost.
func TestConcurrentMetrics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cc_ops_total", "ops")
	g := r.Gauge("cc_level", "level")
	h := r.Histogram("cc_dur_seconds", "dur", []float64{0.5})

	const workers = 8
	const perWorker = 5000
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() { // concurrent scraper
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var b strings.Builder
				_ = r.WriteText(&b)
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%2) + 0.25) // alternate buckets
			}
		}()
	}
	wg.Wait()
	close(stop)
	scraper.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %v, want 0", got)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	lo := h.counts[0].Load()
	hi := h.counts[1].Load()
	if lo != hi || lo+hi != workers*perWorker {
		t.Errorf("bucket split = %d/%d, want even halves of %d", lo, hi, workers*perWorker)
	}
}

// TestParseTextTotalsTrailingTimestamp pins the retry-one-field-left
// behaviour: a `name value timestamp` line must sum the value, not the
// millisecond timestamp, while plain integer values keep parsing as
// values.
func TestParseTextTotalsTrailingTimestamp(t *testing.T) {
	in := `ts_ops_total{kind="a"} 7 1754600000000
ts_ops_total{kind="b"} 2.5 1754600000001
ts_plain_total 5
ts_big_gauge 1754600000000
`
	totals, err := ParseTextTotals(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := totals["ts_ops_total"]; got != 9.5 {
		t.Errorf("ts_ops_total = %v, want 9.5 (timestamps must not be summed)", got)
	}
	if got := totals["ts_plain_total"]; got != 5 {
		t.Errorf("ts_plain_total = %v, want 5", got)
	}
	// A single epoch-magnitude field with no field to its left is a value.
	if got := totals["ts_big_gauge"]; got != 1754600000000 {
		t.Errorf("ts_big_gauge = %v, want 1754600000000", got)
	}
}

// TestHistogramBucketEdges pins bound handling: an observation exactly on
// a bucket bound lands in that bucket (bounds are upper-inclusive), and an
// observation above the top bound lands only in the implicit +Inf bucket.
func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edge_seconds", "x", []float64{0.1, 1})
	h.Observe(0.1) // exactly on the first bound
	h.Observe(1)   // exactly on the top bound
	h.Observe(1.5) // above every bound → +Inf only
	if got := h.counts[0].Load(); got != 1 {
		t.Errorf("bucket le=0.1 = %d, want 1 (bound is inclusive)", got)
	}
	if got := h.counts[1].Load(); got != 1 {
		t.Errorf("bucket le=1 = %d, want 1 (bound is inclusive)", got)
	}
	if got := h.counts[2].Load(); got != 1 {
		t.Errorf("+Inf bucket = %d, want 1", got)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`edge_seconds_bucket{le="0.1"} 1`,
		`edge_seconds_bucket{le="1"} 2`,
		`edge_seconds_bucket{le="+Inf"} 3`,
		`edge_seconds_count 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestHistogramConcurrentSnapshot scrapes while observers hammer the
// histogram and checks every snapshot is internally coherent: parsed
// totals are monotone non-decreasing across scrapes, and the final scrape
// agrees exactly with the observation count.
func TestHistogramConcurrentSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("snap_seconds", "x", []float64{0.5})
	const workers, perWorker = 4, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var scrapeErr error
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		var lastCount float64
		for {
			select {
			case <-stop:
				return
			default:
			}
			var b strings.Builder
			if err := r.WriteText(&b); err != nil {
				scrapeErr = err
				return
			}
			totals, err := ParseTextTotals(strings.NewReader(b.String()))
			if err != nil {
				scrapeErr = err
				return
			}
			if c := totals["snap_seconds_count"]; c < lastCount {
				scrapeErr = fmt.Errorf("count went backwards: %v after %v", c, lastCount)
				return
			} else {
				lastCount = c
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(i%2)*0.75 + 0.1)
			}
		}()
	}
	wg.Wait()
	close(stop)
	scraper.Wait()
	if scrapeErr != nil {
		t.Fatal(scrapeErr)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	totals, err := ParseTextTotals(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got := totals["snap_seconds_count"]; got != workers*perWorker {
		t.Errorf("final count = %v, want %d", got, workers*perWorker)
	}
}

// TestRemoveSeries checks unregistration: the series leaves the
// exposition, the family header goes with the last series, and stale
// handles keep working without resurrecting the series.
func TestRemoveSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("rm_total", "x", Labels{"graph": "a"})
	r.Counter("rm_total", "x", Labels{"graph": "b"}).Inc()
	a.Inc()
	r.RemoveSeries("rm_total", Labels{"graph": "a"})
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), `graph="a"`) {
		t.Error("removed series still exported")
	}
	a.Inc() // stale handle: harmless, invisible
	b.Reset()
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), `graph="a"`) {
		t.Error("stale handle resurrected the series")
	}
	r.RemoveSeries("rm_total", Labels{"graph": "b"})
	r.RemoveSeries("rm_total", Labels{"graph": "b"}) // idempotent
	r.RemoveSeries("never_registered")               // unknown family: no-op
	b.Reset()
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "rm_total") {
		t.Errorf("empty family still exported:\n%s", b.String())
	}
}

// TestSetEnabled checks the global kill switch drops work without
// affecting already-recorded values, and that gauges still Set.
func TestSetEnabled(t *testing.T) {
	defer SetEnabled(true)
	r := NewRegistry()
	c := r.Counter("en_total", "x")
	h := r.Histogram("en_seconds", "x", nil)
	g := r.Gauge("en_gauge", "x")
	c.Inc()
	h.Observe(1)
	SetEnabled(false)
	c.Inc()
	h.Observe(1)
	g.Set(7)
	if !Now().IsZero() {
		t.Error("Now() while disabled should be zero")
	}
	SetEnabled(true)
	if c.Value() != 1 {
		t.Errorf("counter recorded while disabled: %d", c.Value())
	}
	if h.Count() != 1 {
		t.Errorf("histogram recorded while disabled: %d", h.Count())
	}
	if g.Value() != 7 {
		t.Errorf("gauge Set should work while disabled, got %v", g.Value())
	}
	if Now().IsZero() {
		t.Error("Now() while enabled should be non-zero")
	}
}
