package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestTextFormatGolden pins the exact Prometheus text exposition: HELP/TYPE
// headers, sorted families and series, cumulative histogram buckets with
// the implicit +Inf, and _sum/_count rows.
func TestTextFormatGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Total requests.", Labels{"route": "classify"})
	c.Add(3)
	c2 := r.Counter("test_requests_total", "Total requests.", Labels{"route": "labels"})
	c2.Add(1)
	g := r.Gauge("test_in_flight", "In-flight requests.")
	g.Set(2.5)
	h := r.Histogram("test_latency_seconds", "Request latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(5)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_in_flight In-flight requests.
# TYPE test_in_flight gauge
test_in_flight 2.5
# HELP test_latency_seconds Request latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.01"} 1
test_latency_seconds_bucket{le="0.1"} 3
test_latency_seconds_bucket{le="1"} 3
test_latency_seconds_bucket{le="+Inf"} 4
test_latency_seconds_sum 5.105
test_latency_seconds_count 4
# HELP test_requests_total Total requests.
# TYPE test_requests_total counter
test_requests_total{route="classify"} 3
test_requests_total{route="labels"} 1
`
	if got := b.String(); got != want {
		t.Errorf("text format mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestParseTextTotalsRoundTrip checks the scrape-side parser against the
// exporter's own output.
func TestParseTextTotalsRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("rt_ops_total", "ops", Labels{"kind": "a"}).Add(7)
	r.Counter("rt_ops_total", "ops", Labels{"kind": "b"}).Add(5)
	r.Gauge("rt_bytes", "bytes").Set(1 << 20)
	h := r.Histogram("rt_dur_seconds", "dur", []float64{0.1, 1})
	h.Observe(0.5)
	h.Observe(2)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	totals, err := ParseTextTotals(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got := totals["rt_ops_total"]; got != 12 {
		t.Errorf("rt_ops_total = %v, want 12 (summed across labels)", got)
	}
	if got := totals["rt_bytes"]; got != 1<<20 {
		t.Errorf("rt_bytes = %v, want %v", got, 1<<20)
	}
	if got := totals["rt_dur_seconds_count"]; got != 2 {
		t.Errorf("rt_dur_seconds_count = %v, want 2", got)
	}
	if got := totals["rt_dur_seconds_sum"]; math.Abs(got-2.5) > 1e-12 {
		t.Errorf("rt_dur_seconds_sum = %v, want 2.5", got)
	}
}

// TestRegistrationDedup checks that re-registering the same name+labels
// returns the same handle, and that label order does not matter.
func TestRegistrationDedup(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dedup_total", "x", Labels{"a": "1", "b": "2"})
	b := r.Counter("dedup_total", "x", Labels{"b": "2", "a": "1"})
	if a != b {
		t.Error("same name+labels registered twice returned distinct handles")
	}
	c := r.Counter("dedup_total", "x", Labels{"a": "1", "b": "3"})
	if a == c {
		t.Error("distinct labels returned the same handle")
	}
}

// TestConcurrentMetrics hammers one counter, one gauge and one histogram
// from many goroutines while a scraper renders the registry; run under
// -race this is the data-race acceptance test, and the final counts prove
// no increment was lost.
func TestConcurrentMetrics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cc_ops_total", "ops")
	g := r.Gauge("cc_level", "level")
	h := r.Histogram("cc_dur_seconds", "dur", []float64{0.5})

	const workers = 8
	const perWorker = 5000
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() { // concurrent scraper
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var b strings.Builder
				_ = r.WriteText(&b)
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%2) + 0.25) // alternate buckets
			}
		}()
	}
	wg.Wait()
	close(stop)
	scraper.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %v, want 0", got)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	lo := h.counts[0].Load()
	hi := h.counts[1].Load()
	if lo != hi || lo+hi != workers*perWorker {
		t.Errorf("bucket split = %d/%d, want even halves of %d", lo, hi, workers*perWorker)
	}
}

// TestSetEnabled checks the global kill switch drops work without
// affecting already-recorded values, and that gauges still Set.
func TestSetEnabled(t *testing.T) {
	defer SetEnabled(true)
	r := NewRegistry()
	c := r.Counter("en_total", "x")
	h := r.Histogram("en_seconds", "x", nil)
	g := r.Gauge("en_gauge", "x")
	c.Inc()
	h.Observe(1)
	SetEnabled(false)
	c.Inc()
	h.Observe(1)
	g.Set(7)
	if !Now().IsZero() {
		t.Error("Now() while disabled should be zero")
	}
	SetEnabled(true)
	if c.Value() != 1 {
		t.Errorf("counter recorded while disabled: %d", c.Value())
	}
	if h.Count() != 1 {
		t.Errorf("histogram recorded while disabled: %d", h.Count())
	}
	if g.Value() != 7 {
		t.Errorf("gauge Set should work while disabled, got %v", g.Value())
	}
	if Now().IsZero() {
		t.Error("Now() while enabled should be non-zero")
	}
}
