package telemetry

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// ParseTextTotals is the minimal scrape-side inverse of WriteText: it reads
// a Prometheus text exposition and returns each metric name summed across
// its label combinations (histogram components appear under their expanded
// _bucket/_sum/_count names). cmd/loadgen uses it to fold server-side
// counters into bench reports; it ignores comment lines and skips lines it
// cannot parse rather than failing the whole scrape.
//
// It is robust to the exposition features the exporter actually emits:
// escaped label values (`\"`, `\\`, `\n` — a `}` or `#` inside a quoted
// label must not end the label block or start an exemplar), OpenMetrics
// exemplar suffixes after `#`, and trailing millisecond timestamps.
func ParseTextTotals(r io.Reader) (map[string]float64, error) {
	totals := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// name[{labels}] value [timestamp] [# exemplar] — the label block
		// is skipped with full quote/escape awareness so quoted values may
		// contain spaces, braces, escaped quotes and hashes.
		name := line
		rest := ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			end := closingBrace(line, i)
			if end < 0 {
				continue // unterminated label block: not a series line
			}
			name, rest = line[:i], line[end+1:]
		} else if sp := strings.IndexByte(line, ' '); sp >= 0 {
			name, rest = line[:sp], line[sp:]
		} else {
			continue
		}
		// Everything from an (unquoted) '#' on is an exemplar annotation.
		if h := strings.IndexByte(rest, '#'); h >= 0 {
			rest = rest[:h]
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			continue // no value (any trailing timestamp sits AFTER it)
		}
		v, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			continue
		}
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		totals[name] += v
	}
	return totals, sc.Err()
}

// closingBrace returns the index of the '}' terminating the label block
// opened at s[open] ('{'), honoring double-quoted label values with
// backslash escapes — a '}' inside quotes does not close the block.
// Returns -1 when the block never closes.
func closingBrace(s string, open int) int {
	inQuotes := false
	for i := open + 1; i < len(s); i++ {
		switch {
		case inQuotes && s[i] == '\\':
			i++ // skip the escaped character
		case s[i] == '"':
			inQuotes = !inQuotes
		case !inQuotes && s[i] == '}':
			return i
		}
	}
	return -1
}
