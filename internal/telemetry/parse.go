package telemetry

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// ParseTextTotals is the minimal scrape-side inverse of WriteText: it reads
// a Prometheus text exposition and returns each metric name summed across
// its label combinations (histogram components appear under their expanded
// _bucket/_sum/_count names). cmd/loadgen uses it to fold server-side
// counters into bench reports; it ignores comment lines and skips lines it
// cannot parse rather than failing the whole scrape.
func ParseTextTotals(r io.Reader) (map[string]float64, error) {
	totals := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// name{labels} value [timestamp] — labels may contain spaces inside
		// quoted values, so find the value by scanning from the last space.
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		name, valStr := line[:sp], line[sp+1:]
		// A trailing timestamp would make valStr an integer millisecond
		// stamp; WriteText never emits one, and exporters that do put it
		// after the value — handle that by retrying one field left.
		if looksLikeTimestamp(valStr) {
			if sp2 := strings.LastIndexByte(line[:sp], ' '); sp2 >= 0 {
				if _, err := strconv.ParseFloat(line[sp2+1:sp], 64); err == nil {
					name, valStr = line[:sp2], line[sp2+1:sp]
				}
			}
		}
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			continue
		}
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		totals[name] += v
	}
	return totals, sc.Err()
}

// looksLikeTimestamp reports whether a trailing field reads as a Prometheus
// millisecond timestamp: a plain integer of epoch-milliseconds magnitude.
// Metric values that large are conceivable but would be floats or counters
// far beyond anything this stack emits; requiring ≥ 1e12 (Sep 2001 in ms)
// keeps small integer values like "5" parsing as values.
func looksLikeTimestamp(s string) bool {
	n, err := strconv.ParseInt(s, 10, 64)
	return err == nil && n >= 1e12
}
