package telemetry

import (
	"math"
	"strings"
	"testing"
)

// TestParseTextTotalsEscapedLabels is the escaping golden test: label
// values holding every escapable character (backslash, double quote,
// newline — including an escaped closing brace inside quotes) go through
// the exporter's own escaping and must come back out of ParseTextTotals
// with the right totals. The old last-space parser mis-split these lines.
func TestParseTextTotalsEscapedLabels(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_ops_total", "ops", Labels{"path": `C:\tmp\"x"`}).Add(3)
	r.Counter("esc_ops_total", "ops", Labels{"path": "line1\nline2"}).Add(4)
	r.Counter("esc_ops_total", "ops", Labels{"path": `a} b`}).Add(5) // '}' inside quotes
	r.Gauge("esc_level", "level", Labels{"q": `say "hi"`}).Set(2.5)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	// The exposition itself must carry the escapes, not the raw bytes.
	for _, want := range []string{`C:\\tmp\\\"x\"`, `line1\nline2`} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing escaped form %q:\n%s", want, text)
		}
	}
	totals, err := ParseTextTotals(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if got := totals["esc_ops_total"]; got != 12 {
		t.Errorf("esc_ops_total = %v, want 12 (summed across escaped-label series)", got)
	}
	if got := totals["esc_level"]; got != 2.5 {
		t.Errorf("esc_level = %v, want 2.5", got)
	}
}

// TestParseTextTotalsExemplars checks that OpenMetrics-style exemplar
// suffixes on histogram bucket lines (" # {trace_id=\"...\"} v ts") are cut
// before the value is read, against the exporter's own rendering.
func TestParseTextTotalsExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ex_dur_seconds", "dur", []float64{0.1, 1})
	h.ObserveExemplar(0.05, strings.Repeat("ab", 16))
	h.ObserveExemplar(0.5, strings.Repeat("cd", 16))
	h.Observe(2)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if !strings.Contains(text, `# {trace_id="`+strings.Repeat("ab", 16)+`"} 0.05`) {
		t.Fatalf("exposition missing exemplar suffix:\n%s", text)
	}
	totals, err := ParseTextTotals(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if got := totals["ex_dur_seconds_count"]; got != 3 {
		t.Errorf("ex_dur_seconds_count = %v, want 3", got)
	}
	if got := totals["ex_dur_seconds_sum"]; math.Abs(got-2.55) > 1e-12 {
		t.Errorf("ex_dur_seconds_sum = %v, want 2.55", got)
	}
	// Buckets sum too: le="0.1" (1) + le="1" (2) + le="+Inf" (3).
	if got := totals["ex_dur_seconds_bucket"]; got != 6 {
		t.Errorf("ex_dur_seconds_bucket = %v, want 6 (cumulative buckets summed)", got)
	}
}

// TestParseTextTotalsUnterminatedBrace pins the malformed-input behavior:
// a line whose label block never closes is skipped, not mis-parsed, and
// the rest of the scrape still lands.
func TestParseTextTotalsUnterminatedBrace(t *testing.T) {
	text := "bad_total{x=\"oops 1\nok_total 2\n"
	totals, err := ParseTextTotals(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := totals["bad_total"]; ok {
		t.Error("unterminated label block was parsed as a sample")
	}
	if got := totals["ok_total"]; got != 2 {
		t.Errorf("ok_total = %v, want 2", got)
	}
}
