package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SlowLog is the flight recorder's always-on slow-query capture. Every
// request reports its duration; a request slower than the adaptive
// threshold — the tracked p99 of a rolling window times a configurable
// factor, floored at a minimum — has its full stage trace copied into a
// bounded ring served at /v1/admin/slowlog. The fast path is two atomic
// ops (a ring-slot store and a threshold load): no locks, no allocation,
// and the reused *Trace means fast queries never render spans at all.
//
// The threshold self-tunes: an idle server's p99 drops and the log starts
// catching its relative outliers; under load the p99 rises and only the
// genuinely anomalous tail is kept. Until the window has seen at least
// slowLogWarmup samples the threshold stays at +Inf (or the floor, when
// one is configured), so a cold server doesn't log its first requests as
// "slow" against an empty distribution.

const (
	// DefaultSlowLogFactor multiplies the tracked p99 into the capture
	// threshold.
	DefaultSlowLogFactor = 3.0
	// DefaultSlowLogCapacity is the entry-ring size.
	DefaultSlowLogCapacity = 64
	// slowLogWindow is the rolling duration-sample window for p99 tracking.
	slowLogWindow = 512
	// slowLogWarmup is the minimum observations before the adaptive
	// threshold activates.
	slowLogWarmup = 16
	// slowLogRefreshEvery re-derives the threshold every N observations.
	slowLogRefreshEvery = 32
)

// SlowEntry is one captured slow query.
type SlowEntry struct {
	Time      time.Time
	Scope     string // graph name ("" = none)
	Route     string
	Duration  time.Duration
	Threshold time.Duration // the threshold in force at capture
	Spans     []Span
}

// SlowLog captures stage traces of requests beyond an adaptive threshold.
type SlowLog struct {
	factor float64
	floor  time.Duration

	// Rolling duration window; racy slot overwrites are fine — the p99 is
	// a control signal, not an accounting value.
	window [slowLogWindow]atomic.Int64 // nanoseconds
	seq    atomic.Uint64               // total observations
	thresh atomic.Int64                // capture threshold in ns (MaxInt64 = off)

	refreshMu sync.Mutex // serializes threshold recomputation

	mu      sync.Mutex
	entries []SlowEntry // ring; next is the write cursor
	next    int
	n       int
}

// NewSlowLog builds a slow-query log holding capacity entries (≤0 =
// DefaultSlowLogCapacity). factor scales the tracked p99 into the capture
// threshold (≤0 = DefaultSlowLogFactor); floor is the minimum threshold —
// with a positive floor the log starts capturing immediately at the floor,
// with floor 0 it stays off until the warmup window fills.
func NewSlowLog(capacity int, factor float64, floor time.Duration) *SlowLog {
	if capacity <= 0 {
		capacity = DefaultSlowLogCapacity
	}
	if factor <= 0 {
		factor = DefaultSlowLogFactor
	}
	s := &SlowLog{
		factor:  factor,
		floor:   floor,
		entries: make([]SlowEntry, capacity),
	}
	if floor > 0 {
		s.thresh.Store(int64(floor))
	} else {
		s.thresh.Store(math.MaxInt64)
	}
	return s
}

// Threshold reports the capture threshold currently in force.
func (s *SlowLog) Threshold() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.thresh.Load())
}

// Observe records one request duration and, when it beats the threshold,
// captures the trace's spans into the ring. tr may be nil (the duration
// still feeds the p99 window; nothing is captured). Safe on a nil SlowLog.
func (s *SlowLog) Observe(scope, route string, d time.Duration, tr *Trace) {
	if s == nil || !enabledFlag.Load() {
		return
	}
	i := s.seq.Add(1)
	s.window[(i-1)%slowLogWindow].Store(int64(d))
	if i >= slowLogWarmup && (i == slowLogWarmup || i%slowLogRefreshEvery == 0) {
		s.refresh(i)
	}
	thr := s.thresh.Load()
	if int64(d) < thr {
		return
	}
	e := SlowEntry{
		Time:      time.Now(),
		Scope:     scope,
		Route:     route,
		Duration:  d,
		Threshold: time.Duration(thr),
		Spans:     tr.Spans(),
	}
	s.mu.Lock()
	s.entries[s.next] = e
	s.next = (s.next + 1) % len(s.entries)
	if s.n < len(s.entries) {
		s.n++
	}
	s.mu.Unlock()
}

// refresh re-derives the threshold from the window: max(floor, p99×factor).
func (s *SlowLog) refresh(seen uint64) {
	if !s.refreshMu.TryLock() {
		return // another goroutine is already refreshing
	}
	defer s.refreshMu.Unlock()
	n := int(seen)
	if n > slowLogWindow {
		n = slowLogWindow
	}
	durs := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		if v := s.window[i].Load(); v > 0 {
			durs = append(durs, v)
		}
	}
	if len(durs) == 0 {
		return
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	idx := (len(durs)*99 + 99) / 100 // ceil(0.99·n): the p99 order statistic
	if idx > len(durs) {
		idx = len(durs)
	}
	p99 := durs[idx-1]
	thr := int64(float64(p99) * s.factor)
	if thr < int64(s.floor) {
		thr = int64(s.floor)
	}
	s.thresh.Store(thr)
}

// Entries returns the captured slow queries, most recent first. Safe on
// nil (returns nil).
func (s *SlowLog) Entries() []SlowEntry {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SlowEntry, 0, s.n)
	for i := 0; i < s.n; i++ {
		idx := s.next - 1 - i
		if idx < 0 {
			idx += len(s.entries)
		}
		out = append(out, s.entries[idx])
	}
	return out
}

// Len reports the number of captured entries.
func (s *SlowLog) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}
