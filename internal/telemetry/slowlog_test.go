package telemetry

import (
	"testing"
	"time"
)

// TestSlowLogWarmup checks that with no floor nothing is captured before
// the warmup window, and that after warmup the threshold tracks p99×factor
// so an outlier is captured with its spans.
func TestSlowLogWarmup(t *testing.T) {
	s := NewSlowLog(8, 2, 0)
	if s.Threshold() <= 0 {
		t.Fatal("pre-warmup threshold should be effectively infinite")
	}
	tr := NewTrace()
	tr.Add("stage", time.Millisecond)
	for i := 0; i < slowLogWarmup-1; i++ {
		s.Observe("g", "classify", time.Millisecond, tr)
	}
	if s.Len() != 0 {
		t.Fatalf("captured %d entries before warmup, want 0", s.Len())
	}
	// The warmup-th observation derives the first threshold: p99 of a
	// uniform 1ms window ×2 = 2ms.
	s.Observe("g", "classify", time.Millisecond, tr)
	if thr := s.Threshold(); thr != 2*time.Millisecond {
		t.Fatalf("threshold = %v, want 2ms", thr)
	}
	// A 5ms outlier beats the 2ms threshold and is captured.
	s.Observe("g", "classify", 5*time.Millisecond, tr)
	ents := s.Entries()
	if len(ents) != 1 {
		t.Fatalf("entries = %d, want 1", len(ents))
	}
	e := ents[0]
	if e.Scope != "g" || e.Route != "classify" || e.Duration != 5*time.Millisecond {
		t.Errorf("entry = %+v", e)
	}
	if e.Threshold != 2*time.Millisecond {
		t.Errorf("entry threshold = %v, want 2ms", e.Threshold)
	}
	if len(e.Spans) == 0 || e.Spans[0].Name != "stage" {
		t.Errorf("entry spans = %+v, want the trace's stage span", e.Spans)
	}
}

// TestSlowLogFloor checks a positive floor activates capture immediately
// and keeps the adaptive threshold from dropping below it.
func TestSlowLogFloor(t *testing.T) {
	s := NewSlowLog(4, 100, 10*time.Millisecond)
	if thr := s.Threshold(); thr != 10*time.Millisecond {
		t.Fatalf("initial threshold = %v, want the 10ms floor", thr)
	}
	s.Observe("", "classify", 20*time.Millisecond, nil) // nil trace: captured, no spans
	if s.Len() != 1 {
		t.Fatalf("entries = %d, want 1 (floor active before warmup)", s.Len())
	}
	if spans := s.Entries()[0].Spans; spans != nil {
		t.Errorf("nil-trace capture has spans: %+v", spans)
	}
}

// TestSlowLogRing overfills the entry ring and checks only the most recent
// capacity entries survive, most recent first.
func TestSlowLogRing(t *testing.T) {
	s := NewSlowLog(3, 1, time.Nanosecond) // capture everything
	for i := 1; i <= 5; i++ {
		s.Observe("", "r", time.Duration(i)*time.Millisecond, nil)
	}
	ents := s.Entries()
	if len(ents) != 3 {
		t.Fatalf("entries = %d, want 3", len(ents))
	}
	for i, want := range []time.Duration{5, 4, 3} {
		if ents[i].Duration != want*time.Millisecond {
			t.Errorf("entries[%d].Duration = %v, want %vms", i, ents[i].Duration, want)
		}
	}
}

// TestSlowLogDisabled checks the global kill switch silences capture, and
// that a nil SlowLog is inert.
func TestSlowLogDisabled(t *testing.T) {
	defer SetEnabled(true)
	s := NewSlowLog(4, 1, time.Nanosecond)
	SetEnabled(false)
	s.Observe("", "r", time.Second, nil)
	if s.Len() != 0 {
		t.Error("captured while disabled")
	}
	SetEnabled(true)
	var nilLog *SlowLog
	nilLog.Observe("", "r", time.Second, nil)
	if nilLog.Len() != 0 || nilLog.Entries() != nil || nilLog.Threshold() != 0 {
		t.Error("nil SlowLog should be inert")
	}
}
