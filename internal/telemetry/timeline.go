package telemetry

import (
	"sort"
	"sync"
	"time"
)

// Timeline is the in-process flight recorder's history layer: a background
// sampler that reads a set of registered probes at a fixed interval and
// keeps each one's last N samples in a ring, so trend data (queries/sec,
// resident bytes, overlay fraction, per-graph load) is available from the
// server itself — no external Prometheus needed for the admin timeline
// endpoint, loadgen's report tail, or the future router's placement logic.
//
// Probes are cheap closures over metric handles (Counter.Value,
// Gauge.Value, ...), grouped by scope — "" for process-global series, a
// graph name for per-graph ones — so a scope's whole history can be
// dropped when the registry forgets the graph.

// TimelinePoint is one sample: wall-clock unix milliseconds and the
// probe's value at that instant. Counters sample cumulatively; consumers
// difference adjacent points for rates.
type TimelinePoint struct {
	UnixMs int64   `json:"t_ms"`
	Value  float64 `json:"v"`
}

// TimelineSeries is one probe's recorded history, oldest point first.
type TimelineSeries struct {
	Scope  string          `json:"graph,omitempty"` // "" = process-global
	Name   string          `json:"name"`
	Points []TimelinePoint `json:"points"`
}

type timelineProbe struct {
	read func() float64
	ring []TimelinePoint // fixed capacity; next is the write cursor
	next int
	n    int
}

// Timeline samples registered probes every interval into rings of at most
// samples points each.
type Timeline struct {
	interval time.Duration
	samples  int

	mu     sync.Mutex
	probes map[string]map[string]*timelineProbe // scope → name → ring
	stop   chan struct{}
	done   chan struct{}
}

// Default timeline geometry: 90 samples at 10s covers the last 15 minutes.
const (
	DefaultTimelineInterval = 10 * time.Second
	DefaultTimelineSamples  = 90
)

// NewTimeline builds a collector (interval ≤ 0 or samples ≤ 0 select the
// defaults). It does not sample until Start.
func NewTimeline(interval time.Duration, samples int) *Timeline {
	if interval <= 0 {
		interval = DefaultTimelineInterval
	}
	if samples <= 0 {
		samples = DefaultTimelineSamples
	}
	return &Timeline{
		interval: interval,
		samples:  samples,
		probes:   make(map[string]map[string]*timelineProbe),
	}
}

// Interval reports the sampling period.
func (t *Timeline) Interval() time.Duration { return t.interval }

// Track registers a probe under (scope, name); scope "" is process-global.
// Re-tracking an existing pair replaces the reader and keeps the history.
// Safe on a nil Timeline (no-op), so wiring code can leave the collector
// optional.
func (t *Timeline) Track(scope, name string, read func() float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	byName := t.probes[scope]
	if byName == nil {
		byName = make(map[string]*timelineProbe)
		t.probes[scope] = byName
	}
	if p, ok := byName[name]; ok {
		p.read = read
		return
	}
	byName[name] = &timelineProbe{read: read, ring: make([]TimelinePoint, t.samples)}
}

// Untrack drops every probe (and its history) under scope. Safe on nil.
func (t *Timeline) Untrack(scope string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	delete(t.probes, scope)
	t.mu.Unlock()
}

// Sample takes one synchronous sampling pass over every probe. The
// background loop calls this on its ticker; tests call it directly for
// deterministic rings.
func (t *Timeline) Sample() {
	if t == nil {
		return
	}
	now := time.Now().UnixMilli()
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, byName := range t.probes {
		for _, p := range byName {
			p.ring[p.next] = TimelinePoint{UnixMs: now, Value: p.read()}
			p.next = (p.next + 1) % len(p.ring)
			if p.n < len(p.ring) {
				p.n++
			}
		}
	}
}

// Start launches the background sampler; Stop ends it. Safe on nil, and
// idempotent while running.
func (t *Timeline) Start() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.stop != nil {
		t.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	t.stop, t.done = stop, done
	t.mu.Unlock()
	go func() {
		defer close(done)
		tick := time.NewTicker(t.interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				t.Sample()
			}
		}
	}()
}

// Stop halts the background sampler and waits for it to exit. Safe on nil
// and when not started.
func (t *Timeline) Stop() {
	if t == nil {
		return
	}
	t.mu.Lock()
	stop, done := t.stop, t.done
	t.stop, t.done = nil, nil
	t.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Snapshot returns the recorded history. scope "" with all=false returns
// only the process-global series; all=true returns every scope. Series are
// sorted by (scope, name) and each ring is unrolled oldest-first. Safe on
// nil (returns nil).
func (t *Timeline) Snapshot(scope string, all bool) []TimelineSeries {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []TimelineSeries
	for sc, byName := range t.probes {
		if !all && sc != scope {
			continue
		}
		for name, p := range byName {
			pts := make([]TimelinePoint, 0, p.n)
			start := p.next - p.n
			if start < 0 {
				start += len(p.ring)
			}
			for i := 0; i < p.n; i++ {
				pts = append(pts, p.ring[(start+i)%len(p.ring)])
			}
			out = append(out, TimelineSeries{Scope: sc, Name: name, Points: pts})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Scope != out[j].Scope {
			return out[i].Scope < out[j].Scope
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Scopes lists the tracked scopes (sorted; "" first when present). Safe on
// nil.
func (t *Timeline) Scopes() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.probes))
	for sc := range t.probes {
		out = append(out, sc)
	}
	sort.Strings(out)
	return out
}
