package telemetry

import (
	"testing"
	"time"
)

// TestTimelineRing checks sampling into the ring, oldest-first unrolling
// and wraparound once the ring fills.
func TestTimelineRing(t *testing.T) {
	tl := NewTimeline(time.Hour, 3) // manual sampling only
	var v float64
	tl.Track("", "qps", func() float64 { v++; return v })
	for i := 0; i < 2; i++ {
		tl.Sample()
	}
	snap := tl.Snapshot("", false)
	if len(snap) != 1 || snap[0].Name != "qps" {
		t.Fatalf("snapshot = %+v, want one series qps", snap)
	}
	if got := len(snap[0].Points); got != 2 {
		t.Fatalf("points = %d, want 2", got)
	}
	if snap[0].Points[0].Value != 1 || snap[0].Points[1].Value != 2 {
		t.Errorf("points out of order: %+v", snap[0].Points)
	}
	for i := 0; i < 4; i++ { // overflow the 3-slot ring
		tl.Sample()
	}
	snap = tl.Snapshot("", false)
	pts := snap[0].Points
	if len(pts) != 3 {
		t.Fatalf("points after wrap = %d, want 3", len(pts))
	}
	if pts[0].Value != 4 || pts[1].Value != 5 || pts[2].Value != 6 {
		t.Errorf("ring kept wrong window: %+v", pts)
	}
}

// TestTimelineScopes checks per-scope filtering, the all=true union, and
// Untrack dropping a scope's whole history.
func TestTimelineScopes(t *testing.T) {
	tl := NewTimeline(time.Hour, 4)
	tl.Track("", "global", func() float64 { return 1 })
	tl.Track("g1", "queries", func() float64 { return 2 })
	tl.Track("g2", "queries", func() float64 { return 3 })
	tl.Sample()

	if got := len(tl.Snapshot("g1", false)); got != 1 {
		t.Errorf("scope g1 series = %d, want 1", got)
	}
	all := tl.Snapshot("", true)
	if len(all) != 3 {
		t.Fatalf("all series = %d, want 3", len(all))
	}
	// Sorted by scope: global ("") first, then g1, g2.
	if all[0].Scope != "" || all[1].Scope != "g1" || all[2].Scope != "g2" {
		t.Errorf("scope order wrong: %+v", all)
	}
	if sc := tl.Scopes(); len(sc) != 3 || sc[0] != "" {
		t.Errorf("scopes = %v", sc)
	}
	tl.Untrack("g1")
	if got := len(tl.Snapshot("g1", false)); got != 0 {
		t.Errorf("untracked scope still has %d series", got)
	}
	if got := len(tl.Snapshot("", true)); got != 2 {
		t.Errorf("series after untrack = %d, want 2", got)
	}
}

// TestTimelineStartStop smoke-tests the background sampler: it actually
// samples, Stop halts it, and both are idempotent and nil-safe.
func TestTimelineStartStop(t *testing.T) {
	tl := NewTimeline(time.Millisecond, 8)
	tl.Track("", "x", func() float64 { return 1 })
	tl.Start()
	tl.Start() // idempotent
	deadline := time.After(2 * time.Second)
	for {
		if snap := tl.Snapshot("", false); len(snap) == 1 && len(snap[0].Points) > 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("background sampler never sampled")
		case <-time.After(5 * time.Millisecond):
		}
	}
	tl.Stop()
	tl.Stop() // idempotent
	var nilTL *Timeline
	nilTL.Track("", "x", nil)
	nilTL.Untrack("")
	nilTL.Sample()
	nilTL.Start()
	nilTL.Stop()
	if nilTL.Snapshot("", true) != nil || nilTL.Scopes() != nil {
		t.Error("nil timeline should return nil snapshots")
	}
}
