package telemetry

import (
	"context"
	"sync"
	"time"
)

// Trace is a lightweight per-request span recorder: the HTTP layer creates
// one when a client asks for a stage breakdown (debug=1), threads it
// through context and the engine Query, and renders the recorded spans in
// the response. A nil *Trace is fully inert — every method is a no-op that
// reads no clock — so instrumented code calls unconditionally and only
// traced requests pay anything.
type Trace struct {
	t0    time.Time
	mu    sync.Mutex
	spans []Span
}

// Span is one recorded stage: its name, start offset from the trace origin
// and duration.
type Span struct {
	Name  string
	Start time.Duration
	Dur   time.Duration
}

// NewTrace starts a trace anchored at now.
func NewTrace() *Trace { return &Trace{t0: time.Now()} }

// Start opens a span and returns its closer; call the closer when the
// stage ends. Safe on a nil trace (returns an inert closer).
func (t *Trace) Start(name string) func() {
	if t == nil {
		return func() {}
	}
	s := time.Now()
	return func() { t.add(name, s.Sub(t.t0), time.Since(s)) }
}

// Add records a completed span of the given duration ending now. Safe on a
// nil trace. Instrumented code that decides the stage name after the fact
// (e.g. overlay_cached vs overlay_flush) uses this with its own clock
// reads, guarded by t != nil.
func (t *Trace) Add(name string, d time.Duration) {
	if t == nil {
		return
	}
	// d can exceed the elapsed wall time when the caller's clock reads
	// straddle a coarse-timer tick; clamp so Start never goes negative.
	start := time.Since(t.t0) - d
	if start < 0 {
		start = 0
	}
	t.add(name, start, d)
}

func (t *Trace) add(name string, start, d time.Duration) {
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, Start: start, Dur: d})
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans (nil on a nil trace).
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Total returns the elapsed time since the trace began (0 on nil).
func (t *Trace) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.t0)
}

type traceKey struct{}

// WithTrace attaches a trace to the context.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the trace attached to the context, or nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
