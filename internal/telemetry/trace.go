package telemetry

import (
	"context"
	"sync"
	"time"
)

// Trace is a lightweight per-request span recorder. The HTTP layer creates
// one per request (when tracing is on), threads it through context and the
// engine Query, and — when the request is sampled or force-captured — the
// recorded span tree lands in the TraceStore behind /v1/admin/traces.
// Spans carry SpanID/parent links: Start/StartSpan maintain a cursor stack
// of open spans so instrumented layers nest naturally, while the flat Add
// API (kept as a compatibility shim) records post-hoc leaf spans under
// whatever span is open. A nil *Trace is fully inert — every method is a
// no-op that reads no clock — so instrumented code calls unconditionally
// and untraced requests pay nothing.
type Trace struct {
	t0            time.Time
	tid           TraceID
	root          SpanID
	remoteParent  SpanID // parent span from an inbound traceparent (zero if none)
	remoteSampled bool   // inbound traceparent sampled flag
	sampled       bool   // head-sampler (or parent) decision for this trace

	mu    sync.Mutex
	spans []Span
	stack []SpanID // open-span cursor; empty means "under the root span"

	// Per-request work attribution, rolled up into fg_graph_cost_* by the
	// serving layer.
	pushes, edges, rows int64
	flushSec, lockSec   float64
}

// Span is one recorded stage: its name, id, parent link, start offset from
// the trace origin and duration.
type Span struct {
	Name   string
	ID     SpanID
	Parent SpanID
	Start  time.Duration
	Dur    time.Duration
}

// Cost is the per-request work attribution accumulated on a trace.
type Cost struct {
	Pushes          int64
	EdgesTraversed  int64
	RowsCloned      int64
	FlushSeconds    float64
	LockWaitSeconds float64
}

// NewTrace starts a standalone trace anchored at now with a fresh trace
// id. Used by the debug=1 stage-breakdown path and tests; unlike
// NewRequestTrace it is not gated on Enabled.
func NewTrace() *Trace {
	return &Trace{t0: time.Now(), tid: NewTraceID(), root: NewSpanID(), sampled: true}
}

// NewRequestTrace starts the per-request trace for an inbound HTTP request:
// tid is the trace id (extracted from traceparent or freshly generated),
// remoteParent the inbound parent span id (zero when the trace originates
// here), remoteSampled the inbound sampled flag, and sampled the local head
// decision. Returns nil — the fully inert trace — when telemetry is
// disabled, so the disabled path pays not even a clock read.
func NewRequestTrace(tid TraceID, remoteParent SpanID, remoteSampled, sampled bool) *Trace {
	if !enabledFlag.Load() {
		return nil
	}
	return &Trace{
		t0:            time.Now(),
		tid:           tid,
		root:          NewSpanID(),
		remoteParent:  remoteParent,
		remoteSampled: remoteSampled,
		sampled:       sampled,
	}
}

// TraceID returns the trace id (zero on nil).
func (t *Trace) TraceID() TraceID {
	if t == nil {
		return TraceID{}
	}
	return t.tid
}

// RootSpanID returns the id of the implicit request root span (zero on
// nil). Spans recorded while no explicit span is open parent onto it.
func (t *Trace) RootSpanID() SpanID {
	if t == nil {
		return SpanID{}
	}
	return t.root
}

// RemoteParent returns the inbound traceparent's span id (zero when the
// trace originated in this process, or on nil).
func (t *Trace) RemoteParent() SpanID {
	if t == nil {
		return SpanID{}
	}
	return t.remoteParent
}

// RemoteSampled reports the inbound traceparent's sampled flag.
func (t *Trace) RemoteSampled() bool { return t != nil && t.remoteSampled }

// Sampled reports the head-sampling decision for this trace.
func (t *Trace) Sampled() bool { return t != nil && t.sampled }

// StartTime returns the trace origin (zero on nil).
func (t *Trace) StartTime() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.t0
}

var nopCloser = func() {}

var nopNamer = func(string) {}

// Start opens a span named now and returns its closer; call the closer
// when the stage ends. Spans opened while another is open become its
// children. Safe on a nil trace (returns an inert closer).
func (t *Trace) Start(name string) func() {
	if t == nil {
		return nopCloser
	}
	s := time.Now()
	id := NewSpanID()
	t.mu.Lock()
	parent := t.cursorLocked()
	t.stack = append(t.stack, id)
	t.mu.Unlock()
	return func() {
		d := time.Since(s)
		t.mu.Lock()
		t.popLocked(id)
		t.spans = append(t.spans, Span{Name: name, ID: id, Parent: parent, Start: s.Sub(t.t0), Dur: d})
		t.mu.Unlock()
	}
}

// StartSpan opens a span whose name is decided at close time — for stages
// that only learn what they were after the fact (overlay_flush vs
// overlay_cached). Closing with an empty name discards the span (the
// cursor pops, nothing is recorded): the stage turned out not to happen.
// Safe on a nil trace.
func (t *Trace) StartSpan() func(name string) {
	if t == nil {
		return nopNamer
	}
	s := time.Now()
	id := NewSpanID()
	t.mu.Lock()
	parent := t.cursorLocked()
	t.stack = append(t.stack, id)
	t.mu.Unlock()
	return func(name string) {
		d := time.Since(s)
		t.mu.Lock()
		defer t.mu.Unlock()
		t.popLocked(id)
		if name == "" {
			return
		}
		t.spans = append(t.spans, Span{Name: name, ID: id, Parent: parent, Start: s.Sub(t.t0), Dur: d})
	}
}

// Add records a completed span of the given duration ending now, as a leaf
// child of the currently open span. Safe on a nil trace. This is the flat
// compatibility API: instrumented code that decides the stage name after
// the fact with its own clock reads (guarded by t != nil) keeps working
// unchanged, its spans simply gain ids and a parent link.
func (t *Trace) Add(name string, d time.Duration) {
	if t == nil {
		return
	}
	// d can exceed the elapsed wall time when the caller's clock reads
	// straddle a coarse-timer tick; clamp so Start never goes negative.
	start := time.Since(t.t0) - d
	if start < 0 {
		start = 0
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, ID: NewSpanID(), Parent: t.cursorLocked(), Start: start, Dur: d})
	t.mu.Unlock()
}

// cursorLocked returns the id new spans should parent onto: the innermost
// open span, or the root when none is open. Caller holds t.mu.
func (t *Trace) cursorLocked() SpanID {
	if n := len(t.stack); n > 0 {
		return t.stack[n-1]
	}
	return t.root
}

// popLocked removes id from the open-span stack, searching from the top:
// the common case is a perfectly nested close (id IS the top), but an
// out-of-order close must not orphan the cursor. Caller holds t.mu.
func (t *Trace) popLocked(id SpanID) {
	for i := len(t.stack) - 1; i >= 0; i-- {
		if t.stack[i] == id {
			t.stack = append(t.stack[:i], t.stack[i+1:]...)
			return
		}
	}
}

// AddWork accumulates propagation work counts onto the trace's cost
// attribution. Safe on a nil trace.
func (t *Trace) AddWork(pushes, edges, rows int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.pushes += int64(pushes)
	t.edges += int64(edges)
	t.rows += int64(rows)
	t.mu.Unlock()
}

// AddWait accumulates flush and lock-wait time (seconds) onto the trace's
// cost attribution. Safe on a nil trace.
func (t *Trace) AddWait(flushSeconds, lockWaitSeconds float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.flushSec += flushSeconds
	t.lockSec += lockWaitSeconds
	t.mu.Unlock()
}

// Cost returns the accumulated work attribution (zero on nil).
func (t *Trace) Cost() Cost {
	if t == nil {
		return Cost{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return Cost{
		Pushes:          t.pushes,
		EdgesTraversed:  t.edges,
		RowsCloned:      t.rows,
		FlushSeconds:    t.flushSec,
		LockWaitSeconds: t.lockSec,
	}
}

// Spans returns a copy of the recorded spans (nil on a nil trace).
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Total returns the elapsed time since the trace began (0 on nil).
func (t *Trace) Total() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.t0)
}

type traceKey struct{}

// WithTrace attaches a trace to the context.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the trace attached to the context, or nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
