package telemetry

import (
	"context"
	"testing"
	"time"
)

func TestTraceSpans(t *testing.T) {
	tr := NewTrace()
	end := tr.Start("stage_a")
	time.Sleep(time.Millisecond)
	end()
	tr.Add("stage_b", 5*time.Millisecond)

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "stage_a" || spans[0].Dur <= 0 {
		t.Errorf("stage_a span = %+v", spans[0])
	}
	if spans[1].Name != "stage_b" || spans[1].Dur != 5*time.Millisecond {
		t.Errorf("stage_b span = %+v", spans[1])
	}
	if tr.Total() <= 0 {
		t.Error("Total() should be positive")
	}
}

// TestNilTrace pins the nil-safety contract instrumented code relies on:
// every method on a nil *Trace is an inert no-op.
func TestNilTrace(t *testing.T) {
	var tr *Trace
	tr.Start("x")()
	tr.Add("y", time.Second)
	if tr.Spans() != nil {
		t.Error("nil trace Spans() should be nil")
	}
	if tr.Total() != 0 {
		t.Error("nil trace Total() should be 0")
	}
}

// TestTraceAddClampsStart pins the clock-skew fix: when Add is handed a
// duration longer than the wall time elapsed since the trace origin
// (coarse timers can round that way), Start clamps at zero instead of
// going negative.
func TestTraceAddClampsStart(t *testing.T) {
	tr := NewTrace()
	tr.Add("skewed", time.Hour) // far beyond elapsed wall time
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	if spans[0].Start != 0 {
		t.Errorf("Start = %v, want 0 (clamped)", spans[0].Start)
	}
	if spans[0].Dur != time.Hour {
		t.Errorf("Dur = %v, want 1h (duration must be preserved)", spans[0].Dur)
	}
	// A plausible duration still records a positive offset.
	time.Sleep(2 * time.Millisecond)
	tr.Add("normal", time.Millisecond)
	spans = tr.Spans()
	if spans[1].Start <= 0 {
		t.Errorf("normal span Start = %v, want > 0", spans[1].Start)
	}
}

func TestTraceContext(t *testing.T) {
	if TraceFrom(context.Background()) != nil {
		t.Error("empty context should carry no trace")
	}
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Error("trace did not round-trip through context")
	}
}
