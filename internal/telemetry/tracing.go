package telemetry

import (
	"encoding/binary"
	"encoding/hex"
	"math"
	"math/rand/v2"
	"sync"
	"time"
)

// TraceID is a W3C trace-context trace id: 16 bytes, hex-rendered on the
// wire. The all-zero id is invalid per spec and doubles as "no id" here.
type TraceID [16]byte

// SpanID is a W3C trace-context parent/span id: 8 bytes.
type SpanID [8]byte

// IsZero reports whether the id is the invalid all-zero id.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// IsZero reports whether the id is the invalid all-zero id.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the id as 32 lowercase hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// String renders the id as 16 lowercase hex digits.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// NewTraceID returns a random non-zero trace id.
func NewTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		binary.BigEndian.PutUint64(id[0:8], rand.Uint64())
		binary.BigEndian.PutUint64(id[8:16], rand.Uint64())
	}
	return id
}

// NewSpanID returns a random non-zero span id.
func NewSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		binary.BigEndian.PutUint64(id[:], rand.Uint64())
	}
	return id
}

// ParseTraceID parses 32 hex digits; ok is false for malformed or all-zero
// input.
func ParseTraceID(s string) (TraceID, bool) {
	var id TraceID
	if len(s) != 32 {
		return id, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return TraceID{}, false
	}
	return id, !id.IsZero()
}

// ParseSpanID parses 16 hex digits; ok is false for malformed or all-zero
// input.
func ParseSpanID(s string) (SpanID, bool) {
	var id SpanID
	if len(s) != 16 {
		return id, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return SpanID{}, false
	}
	return id, !id.IsZero()
}

// Traceparent renders a version-00 W3C traceparent header value.
func Traceparent(tid TraceID, sid SpanID, sampled bool) string {
	flags := "00"
	if sampled {
		flags = "01"
	}
	return "00-" + tid.String() + "-" + sid.String() + "-" + flags
}

// ParseTraceparent parses a version-00 W3C traceparent header
// (00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>). ok is false for
// anything malformed, unknown versions included — a bad header means "start
// a fresh trace", never an error.
func ParseTraceparent(h string) (tid TraceID, parent SpanID, sampled, ok bool) {
	if len(h) != 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceID{}, SpanID{}, false, false
	}
	if h[0] != '0' || h[1] != '0' { // only version 00 is understood
		return TraceID{}, SpanID{}, false, false
	}
	tid, tok := ParseTraceID(h[3:35])
	parent, pok := ParseSpanID(h[36:52])
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(h[53:55])); err != nil || !tok || !pok {
		return TraceID{}, SpanID{}, false, false
	}
	return tid, parent, flags[0]&0x01 != 0, true
}

// Sampler is a deterministic head sampler: a trace id is sampled iff its
// low 8 bytes, read as a uint64, fall under rate×MaxUint64. Deterministic
// on the id so every process in a future multi-shard deployment makes the
// same decision for the same trace without coordination.
type Sampler struct{ threshold uint64 }

// NewSampler builds a sampler keeping the given fraction of traces
// (rate ≤ 0 keeps none, rate ≥ 1 keeps all).
func NewSampler(rate float64) *Sampler {
	switch {
	case rate <= 0:
		return &Sampler{threshold: 0}
	case rate >= 1:
		return &Sampler{threshold: math.MaxUint64}
	}
	return &Sampler{threshold: uint64(rate * math.MaxUint64)}
}

// Sample reports whether the trace id falls inside the kept fraction.
func (s *Sampler) Sample(id TraceID) bool {
	if s.threshold == math.MaxUint64 {
		return true
	}
	return binary.BigEndian.Uint64(id[8:]) < s.threshold
}

// Rate returns the configured sampling fraction.
func (s *Sampler) Rate() float64 {
	return float64(s.threshold) / math.MaxUint64
}

// StoredTrace is one completed, captured request trace as kept by the
// TraceStore and served from GET /v1/admin/traces.
type StoredTrace struct {
	ID           TraceID
	Root         SpanID
	RemoteParent SpanID // zero when the trace originated here
	Graph        string
	Kind         string // classify | patch | mutate | ...
	Start        time.Time
	Duration     time.Duration
	Status       int
	Reason       string // head | parent | slow | error
	Spans        []Span
	Cost         Cost
}

// TraceStore is a bounded in-process ring of captured traces with id
// lookup. Put overwrites the oldest entry once full; the byID index always
// reflects exactly the ring's contents, so an exemplar trace_id resolves
// for as long as the trace it names is retained.
type TraceStore struct {
	mu   sync.Mutex
	ring []StoredTrace
	byID map[TraceID]int
	next int
	n    int
}

// DefaultTraceStoreCapacity bounds the in-process trace ring.
const DefaultTraceStoreCapacity = 256

// NewTraceStore returns a store retaining the most recent capacity traces
// (capacity < 1 uses DefaultTraceStoreCapacity).
func NewTraceStore(capacity int) *TraceStore {
	if capacity < 1 {
		capacity = DefaultTraceStoreCapacity
	}
	return &TraceStore{
		ring: make([]StoredTrace, capacity),
		byID: make(map[TraceID]int, capacity),
	}
}

// Put captures a trace, evicting the oldest once the ring is full.
func (s *TraceStore) Put(t StoredTrace) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old := s.ring[s.next]; s.n == len(s.ring) && s.byID[old.ID] == s.next {
		delete(s.byID, old.ID)
	}
	s.ring[s.next] = t
	s.byID[t.ID] = s.next
	s.next = (s.next + 1) % len(s.ring)
	if s.n < len(s.ring) {
		s.n++
	}
}

// Get returns the stored trace with the given id.
func (s *TraceStore) Get(id TraceID) (StoredTrace, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.byID[id]
	if !ok {
		return StoredTrace{}, false
	}
	return s.ring[i], true
}

// Snapshot returns the retained traces, newest first.
func (s *TraceStore) Snapshot() []StoredTrace {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]StoredTrace, 0, s.n)
	for i := 1; i <= s.n; i++ {
		out = append(out, s.ring[(s.next-i+len(s.ring))%len(s.ring)])
	}
	return out
}

// Len returns the number of retained traces.
func (s *TraceStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Capacity returns the ring size.
func (s *TraceStore) Capacity() int { return len(s.ring) }
