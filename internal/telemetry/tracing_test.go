package telemetry

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tid := NewTraceID()
	sid := NewSpanID()
	for _, sampled := range []bool{true, false} {
		h := Traceparent(tid, sid, sampled)
		if len(h) != 55 {
			t.Fatalf("traceparent %q: len %d, want 55", h, len(h))
		}
		gtid, gsid, gsampled, ok := ParseTraceparent(h)
		if !ok {
			t.Fatalf("ParseTraceparent(%q) not ok", h)
		}
		if gtid != tid || gsid != sid || gsampled != sampled {
			t.Errorf("round trip %q: got (%s, %s, %v), want (%s, %s, %v)",
				h, gtid, gsid, gsampled, tid, sid, sampled)
		}
	}
}

func TestTraceparentRejectsMalformed(t *testing.T) {
	valid := Traceparent(NewTraceID(), NewSpanID(), true)
	bad := []string{
		"",
		"00",
		valid[:54],                          // truncated
		valid + "0",                         // too long
		"01" + valid[2:],                    // unknown version
		"zz" + valid[2:],                    // non-hex version
		strings.Replace(valid, "-", "_", 1), // wrong separator
		"00-" + strings.Repeat("0", 32) + valid[35:],      // all-zero trace id
		valid[:36] + strings.Repeat("0", 16) + valid[52:], // all-zero parent id
		valid[:3] + "g" + valid[4:],                       // non-hex trace id
		valid[:53] + "gg",                                 // non-hex flags
	}
	for _, h := range bad {
		if _, _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted malformed input", h)
		}
	}
}

func TestSamplerDeterministicAndBounded(t *testing.T) {
	if s := NewSampler(0); s.Sample(NewTraceID()) {
		t.Error("rate-0 sampler kept a trace")
	}
	if s := NewSampler(1); !s.Sample(NewTraceID()) {
		t.Error("rate-1 sampler dropped a trace")
	}
	if s := NewSampler(-0.5); s.Sample(NewTraceID()) {
		t.Error("negative-rate sampler kept a trace")
	}

	// Deterministic: the same id always gets the same verdict, so every
	// process in a shared deployment agrees without coordination.
	s := NewSampler(0.5)
	ids := make([]TraceID, 200)
	kept := 0
	for i := range ids {
		ids[i] = NewTraceID()
		if s.Sample(ids[i]) {
			kept++
		}
	}
	for _, id := range ids {
		if s.Sample(id) != s.Sample(id) {
			t.Fatalf("sampler verdict for %s is unstable", id)
		}
	}
	// At rate 0.5 over 200 uniform ids, 40..160 kept is > 12 sigma.
	if kept < 40 || kept > 160 {
		t.Errorf("rate-0.5 sampler kept %d/200", kept)
	}
}

func TestTraceStoreEvictionAndLookup(t *testing.T) {
	s := NewTraceStore(4)
	if s.Capacity() != 4 {
		t.Fatalf("Capacity() = %d, want 4", s.Capacity())
	}
	ids := make([]TraceID, 6)
	for i := range ids {
		ids[i] = NewTraceID()
		s.Put(StoredTrace{ID: ids[i], Kind: fmt.Sprintf("t%d", i)})
	}
	if s.Len() != 4 {
		t.Fatalf("Len() = %d, want 4", s.Len())
	}
	// The two oldest were evicted; their ids no longer resolve.
	for _, id := range ids[:2] {
		if _, ok := s.Get(id); ok {
			t.Errorf("evicted trace %s still resolves", id)
		}
	}
	for i, id := range ids[2:] {
		st, ok := s.Get(id)
		if !ok {
			t.Fatalf("retained trace %s does not resolve", id)
		}
		if want := fmt.Sprintf("t%d", i+2); st.Kind != want {
			t.Errorf("Get(%s).Kind = %q, want %q", id, st.Kind, want)
		}
	}
	// Snapshot is newest first.
	snap := s.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Snapshot() has %d traces, want 4", len(snap))
	}
	for i, st := range snap {
		if want := ids[5-i]; st.ID != want {
			t.Errorf("Snapshot[%d].ID = %s, want %s", i, st.ID, want)
		}
	}
}

// TestTraceStoreReputSameID pins the eviction guard: when a trace id is
// stored twice (retry with the same traceparent), evicting the older copy
// must not delete the newer copy's index entry.
func TestTraceStoreReputSameID(t *testing.T) {
	s := NewTraceStore(2)
	id := NewTraceID()
	s.Put(StoredTrace{ID: id, Kind: "old"})
	s.Put(StoredTrace{ID: id, Kind: "new"}) // same id, newer slot
	s.Put(StoredTrace{ID: NewTraceID()})    // evicts the "old" slot
	st, ok := s.Get(id)
	if !ok {
		t.Fatal("re-put id no longer resolves after evicting its older copy")
	}
	if st.Kind != "new" {
		t.Errorf("Get resolved the %q copy, want \"new\"", st.Kind)
	}
}

func TestTraceSpanNesting(t *testing.T) {
	tr := NewTrace()
	endOuter := tr.Start("outer")
	endInner := tr.Start("inner")
	tr.Add("leaf", time.Microsecond)
	endInner()
	endOuter()
	tr.Add("after", time.Microsecond)

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4: %+v", len(spans), spans)
	}
	byName := map[string]Span{}
	for _, sp := range spans {
		if sp.ID.IsZero() {
			t.Errorf("span %q has a zero id", sp.Name)
		}
		byName[sp.Name] = sp
	}
	root := tr.RootSpanID()
	if byName["outer"].Parent != root {
		t.Errorf("outer.Parent = %s, want root %s", byName["outer"].Parent, root)
	}
	if byName["inner"].Parent != byName["outer"].ID {
		t.Errorf("inner.Parent = %s, want outer %s", byName["inner"].Parent, byName["outer"].ID)
	}
	if byName["leaf"].Parent != byName["inner"].ID {
		t.Errorf("leaf.Parent = %s, want inner %s", byName["leaf"].Parent, byName["inner"].ID)
	}
	if byName["after"].Parent != root {
		t.Errorf("after.Parent = %s, want root %s (all explicit spans closed)", byName["after"].Parent, root)
	}
}

func TestStartSpanDeferredNameAndDiscard(t *testing.T) {
	tr := NewTrace()
	end := tr.StartSpan()
	end("decided_late")
	discard := tr.StartSpan()
	discard("") // the stage turned out not to happen
	after := tr.Start("after")
	after()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2 (discarded span must not record): %+v", len(spans), spans)
	}
	if spans[0].Name != "decided_late" {
		t.Errorf("spans[0].Name = %q", spans[0].Name)
	}
	// The discarded span must also pop the cursor: "after" parents onto the
	// root, not onto a ghost.
	if spans[1].Parent != tr.RootSpanID() {
		t.Errorf("after.Parent = %s, want root %s", spans[1].Parent, tr.RootSpanID())
	}
}

func TestTraceCostAccumulation(t *testing.T) {
	var nilTrace *Trace
	nilTrace.AddWork(1, 2, 3) // must not panic
	nilTrace.AddWait(1, 2)
	if c := nilTrace.Cost(); c != (Cost{}) {
		t.Errorf("nil trace Cost() = %+v, want zero", c)
	}

	tr := NewTrace()
	tr.AddWork(10, 200, 3)
	tr.AddWork(5, 100, 0)
	tr.AddWait(0.25, 0.5)
	got := tr.Cost()
	want := Cost{Pushes: 15, EdgesTraversed: 300, RowsCloned: 3, FlushSeconds: 0.25, LockWaitSeconds: 0.5}
	if got != want {
		t.Errorf("Cost() = %+v, want %+v", got, want)
	}
}

func TestNewRequestTraceDisabled(t *testing.T) {
	SetEnabled(false)
	defer SetEnabled(true)
	if tr := NewRequestTrace(NewTraceID(), SpanID{}, false, true); tr != nil {
		t.Error("NewRequestTrace should be nil while telemetry is disabled")
	}
}

func TestRequestTraceCarriesContext(t *testing.T) {
	tid := NewTraceID()
	parent := NewSpanID()
	tr := NewRequestTrace(tid, parent, true, true)
	if tr.TraceID() != tid {
		t.Errorf("TraceID() = %s, want %s", tr.TraceID(), tid)
	}
	if tr.RemoteParent() != parent {
		t.Errorf("RemoteParent() = %s, want %s", tr.RemoteParent(), parent)
	}
	if !tr.RemoteSampled() || !tr.Sampled() {
		t.Error("sampled flags lost")
	}
	if tr.RootSpanID().IsZero() {
		t.Error("root span id is zero")
	}
}
