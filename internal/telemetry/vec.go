package telemetry

import (
	"container/list"
	"sync"
)

// This file adds the one controlled exception to the package's
// "no dynamic labeling" rule: a Vec is a metric family with a single
// dynamic label (in practice `graph`) whose values are resolved to
// pre-registered handles through a small lock-guarded LRU. The hot path
// after resolution is still a bare atomic on the returned handle; the
// resolution itself is one mutex and one map lookup, paid once per
// request, not per increment. Cardinality is bounded: when more than
// `limit` distinct label values are live, the least-recently-used value's
// series is unregistered from the exposition (the registry forgets it;
// a stale handle keeps working but is no longer exported). Owners that
// know a value's lifetime (the graph registry) call Delete eagerly on
// eviction instead of waiting for LRU pressure.

// DefaultVecCardinality bounds the number of live dynamic-label values a
// Vec tracks before LRU-releasing the coldest. It is sized well above the
// graph counts a single process serves under a sane memory budget, so in
// practice eager Delete — not LRU pressure — is what releases series.
const DefaultVecCardinality = 256

// vecCore is the shared resolution machinery under CounterVec, GaugeVec
// and HistogramVec: value → handle with LRU-bounded cardinality.
type vecCore struct {
	reg   *Registry
	name  string
	help  string
	label string
	limit int

	mu      sync.Mutex
	entries map[string]*list.Element // value → element in lru
	lru     *list.List               // front = most recently used
}

type vecEntry struct {
	value  string
	handle any
}

func newVecCore(reg *Registry, name, help, label string, limit int) vecCore {
	if reg == nil {
		reg = Default()
	}
	if limit <= 0 {
		limit = DefaultVecCardinality
	}
	return vecCore{
		reg:     reg,
		name:    name,
		help:    help,
		label:   label,
		limit:   limit,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// resolve returns the handle for value, creating (and LRU-evicting) as
// needed. make builds a fresh handle by registering the labeled series.
func (c *vecCore) resolve(value string, make func(Labels) any) any {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[value]; ok {
		c.lru.MoveToFront(el)
		return el.Value.(*vecEntry).handle
	}
	h := make(Labels{c.label: value})
	c.entries[value] = c.lru.PushFront(&vecEntry{value: value, handle: h})
	for len(c.entries) > c.limit {
		back := c.lru.Back()
		if back == nil {
			break
		}
		ev := back.Value.(*vecEntry)
		c.lru.Remove(back)
		delete(c.entries, ev.value)
		c.reg.RemoveSeries(c.name, Labels{c.label: ev.value})
	}
	return h
}

// delete drops value's series from the vector and the registry.
func (c *vecCore) delete(value string) {
	c.mu.Lock()
	el, ok := c.entries[value]
	if ok {
		c.lru.Remove(el)
		delete(c.entries, value)
	}
	c.mu.Unlock()
	if ok {
		c.reg.RemoveSeries(c.name, Labels{c.label: value})
	}
}

// len reports the number of live label values (tests and admin surfaces).
func (c *vecCore) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// each calls fn for every live (value, handle) pair, iterating over a
// snapshot taken under the lock so fn runs unlocked. Crucially it does NOT
// resolve: reading a report through each never creates or resurrects a
// series for a value that was deleted.
func (c *vecCore) each(fn func(value string, handle any)) {
	c.mu.Lock()
	snap := make([]*vecEntry, 0, len(c.entries))
	for el := c.lru.Front(); el != nil; el = el.Next() {
		snap = append(snap, el.Value.(*vecEntry))
	}
	c.mu.Unlock()
	for _, e := range snap {
		fn(e.value, e.handle)
	}
}

// CounterVec is a counter family with one dynamic label.
type CounterVec struct{ core vecCore }

// NewCounterVec registers a counter family on reg (nil = Default()) whose
// series carry label={value}; at most limit (≤0 = DefaultVecCardinality)
// distinct values are live at once.
func NewCounterVec(reg *Registry, name, help, label string, limit int) *CounterVec {
	return &CounterVec{core: newVecCore(reg, name, help, label, limit)}
}

func (v *CounterVec) With(value string) *Counter {
	return v.core.resolve(value, func(l Labels) any {
		return v.core.reg.Counter(v.core.name, v.core.help, l)
	}).(*Counter)
}

// Delete releases value's series (call when the labeled object dies).
func (v *CounterVec) Delete(value string) { v.core.delete(value) }

// Len reports the number of live label values.
func (v *CounterVec) Len() int { return v.core.len() }

// Each visits every live (value, counter) pair without resolving — reading
// never creates or resurrects a series.
func (v *CounterVec) Each(fn func(value string, c *Counter)) {
	v.core.each(func(value string, h any) { fn(value, h.(*Counter)) })
}

// FloatCounterVec is a float counter family with one dynamic label —
// seconds-valued per-graph cost accumulation.
type FloatCounterVec struct{ core vecCore }

// NewFloatCounterVec registers a float counter family on reg (nil =
// Default()) whose series carry label={value}; at most limit (≤0 =
// DefaultVecCardinality) distinct values are live at once.
func NewFloatCounterVec(reg *Registry, name, help, label string, limit int) *FloatCounterVec {
	return &FloatCounterVec{core: newVecCore(reg, name, help, label, limit)}
}

func (v *FloatCounterVec) With(value string) *FloatCounter {
	return v.core.resolve(value, func(l Labels) any {
		return v.core.reg.FloatCounter(v.core.name, v.core.help, l)
	}).(*FloatCounter)
}

// Delete releases value's series (call when the labeled object dies).
func (v *FloatCounterVec) Delete(value string) { v.core.delete(value) }

// Len reports the number of live label values.
func (v *FloatCounterVec) Len() int { return v.core.len() }

// Each visits every live (value, counter) pair without resolving.
func (v *FloatCounterVec) Each(fn func(value string, c *FloatCounter)) {
	v.core.each(func(value string, h any) { fn(value, h.(*FloatCounter)) })
}

// GaugeVec is a gauge family with one dynamic label.
type GaugeVec struct{ core vecCore }

// NewGaugeVec registers a gauge family on reg (nil = Default()) whose
// series carry label={value}; at most limit (≤0 = DefaultVecCardinality)
// distinct values are live at once.
func NewGaugeVec(reg *Registry, name, help, label string, limit int) *GaugeVec {
	return &GaugeVec{core: newVecCore(reg, name, help, label, limit)}
}

func (v *GaugeVec) With(value string) *Gauge {
	return v.core.resolve(value, func(l Labels) any {
		return v.core.reg.Gauge(v.core.name, v.core.help, l)
	}).(*Gauge)
}

// Delete releases value's series (call when the labeled object dies).
func (v *GaugeVec) Delete(value string) { v.core.delete(value) }

// Len reports the number of live label values.
func (v *GaugeVec) Len() int { return v.core.len() }

// Each visits every live (value, gauge) pair without resolving.
func (v *GaugeVec) Each(fn func(value string, g *Gauge)) {
	v.core.each(func(value string, h any) { fn(value, h.(*Gauge)) })
}

// HistogramVec is a histogram family with one dynamic label; all series
// share one set of bucket bounds.
type HistogramVec struct {
	core   vecCore
	bounds []float64
}

// NewHistogramVec registers a histogram family on reg (nil = Default())
// with the given bounds (nil = DefBuckets) whose series carry
// label={value}; at most limit (≤0 = DefaultVecCardinality) distinct
// values are live at once.
func NewHistogramVec(reg *Registry, name, help, label string, bounds []float64, limit int) *HistogramVec {
	return &HistogramVec{core: newVecCore(reg, name, help, label, limit), bounds: bounds}
}

func (v *HistogramVec) With(value string) *Histogram {
	return v.core.resolve(value, func(l Labels) any {
		return v.core.reg.Histogram(v.core.name, v.core.help, v.bounds, l)
	}).(*Histogram)
}

// Delete releases value's series (call when the labeled object dies).
func (v *HistogramVec) Delete(value string) { v.core.delete(value) }

// Len reports the number of live label values.
func (v *HistogramVec) Len() int { return v.core.len() }
