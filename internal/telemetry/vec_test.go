package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestVecResolveAndExport checks the basic contract: With resolves each
// distinct label value to its own stable handle, and the series land in
// the text exposition under the dynamic label.
func TestVecResolveAndExport(t *testing.T) {
	r := NewRegistry()
	v := NewCounterVec(r, "vec_ops_total", "ops", "graph", 8)
	a := v.With("alpha")
	a.Add(3)
	if b := v.With("alpha"); a != b {
		t.Error("same value resolved to distinct handles")
	}
	v.With("beta").Inc()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`vec_ops_total{graph="alpha"} 3`,
		`vec_ops_total{graph="beta"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestVecCardinalityBound floods a vec past its limit and checks the
// least-recently-used values are dropped from the exposition while the
// hot ones survive — the no-cardinality-leak guarantee.
func TestVecCardinalityBound(t *testing.T) {
	r := NewRegistry()
	v := NewGaugeVec(r, "vec_level", "level", "graph", 4)
	for i := 0; i < 10; i++ {
		v.With(fmt.Sprintf("g%d", i)).Set(float64(i))
	}
	if got := v.Len(); got != 4 {
		t.Fatalf("live values = %d, want 4", got)
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for i := 0; i < 6; i++ {
		if s := fmt.Sprintf(`graph="g%d"`, i); strings.Contains(out, s) {
			t.Errorf("evicted series %s still exported", s)
		}
	}
	for i := 6; i < 10; i++ {
		if s := fmt.Sprintf(`graph="g%d"`, i); !strings.Contains(out, s) {
			t.Errorf("live series %s missing from exposition", s)
		}
	}
	// Touching g6 must protect it from the next eviction round.
	v.With("g6")
	v.With("new1")
	v.With("new2")
	v.With("new3")
	sb.Reset()
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `graph="g6"`) {
		t.Error("recently-used value g6 was evicted before colder ones")
	}
}

// TestVecDelete checks explicit release: the series disappears from the
// exposition and from the live set, and an empty family drops entirely
// (no dangling HELP/TYPE header).
func TestVecDelete(t *testing.T) {
	r := NewRegistry()
	v := NewHistogramVec(r, "vec_dur_seconds", "dur", "graph", []float64{0.1, 1}, 8)
	v.With("a").Observe(0.5)
	v.With("b").Observe(0.5)
	v.Delete("a")
	if got := v.Len(); got != 1 {
		t.Fatalf("live values after delete = %d, want 1", got)
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), `graph="a"`) {
		t.Error("deleted series still exported")
	}
	if !strings.Contains(sb.String(), `graph="b"`) {
		t.Error("surviving series missing")
	}
	v.Delete("b")
	v.Delete("b") // idempotent
	sb.Reset()
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "vec_dur_seconds") {
		t.Errorf("empty family still exported:\n%s", sb.String())
	}
	// Re-registering after a full drop must work from scratch.
	v.With("c").Observe(2)
	sb.Reset()
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `vec_dur_seconds_count{graph="c"} 1`) {
		t.Errorf("re-registered series missing:\n%s", sb.String())
	}
}

// TestVecConcurrent resolves, updates and deletes from many goroutines
// while a scraper renders — the -race acceptance for the vec layer.
func TestVecConcurrent(t *testing.T) {
	r := NewRegistry()
	v := NewCounterVec(r, "vec_cc_total", "ops", "graph", 16)
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var sb strings.Builder
				_ = r.WriteText(&sb)
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				name := fmt.Sprintf("g%d", i%24)
				v.With(name).Inc()
				if i%100 == 0 {
					v.Delete(name)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scraper.Wait()
	if got := v.Len(); got > 16 {
		t.Errorf("cardinality bound exceeded: %d live values", got)
	}
}
