package factorgraph

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"factorgraph/internal/dense"
	"factorgraph/internal/propagation"
	"factorgraph/internal/sparse"
)

// kernelArtifact mirrors cmd/benchdiff's kernelReport: the BENCH_kernel.json
// schema trended in CI and gated by `benchdiff -old-kernel -new-kernel`.
type kernelArtifact struct {
	Nodes              int     `json:"nodes"`
	Edges              int     `json:"edges"`
	SpmmSimpleGBps     float64 `json:"spmm_simple_gbps"`
	SpmmBlockedGBps    float64 `json:"spmm_blocked_gbps"`
	SpmmF32GBps        float64 `json:"spmm_f32_gbps"`
	SpmmSpeedup        float64 `json:"spmm_speedup"`
	PropagationSeconds float64 `json:"propagation_seconds"`
}

// spmmBytes estimates the memory traffic of one W×X pass: per nonzero one
// column index plus one gathered x-row, per row one written out-row, plus
// the row-pointer walk; elemBytes is 8 for the float64 kernels, 4 for f32
// (CSR values, when present, stay float64 in both).
func spmmBytes(c *sparse.CSR, k, elemBytes int) float64 {
	nnz := len(c.Indices)
	b := nnz*4 + nnz*k*elemBytes // indices + gathered x-rows
	if c.Data != nil {
		b += nnz * 8
	}
	b += c.N*k*elemBytes + (c.N+1)*4 // out-rows + IndPtr
	return float64(b)
}

// timeOp runs op until ~80ms of samples accumulate (at least 3 reps) and
// returns the best-rep wall time — the standard least-noise estimator for
// bandwidth microbenchmarks.
func timeOp(op func()) float64 {
	op() // warm: page in buffers, spin up the worker pool
	best := 0.0
	var total time.Duration
	for rep := 0; rep < 3 || (total < 80*time.Millisecond && rep < 50); rep++ {
		start := time.Now()
		op()
		d := time.Since(start)
		total += d
		if s := d.Seconds(); best == 0 || s < best {
			best = s
		}
	}
	return best
}

// TestKernelThroughputArtifact measures the SpMM kernels the way CI trends
// them: the seed-era flat-scan kernel on the unordered matrix vs the
// blocked kernel on the degree-reordered matrix (the layout compaction
// produces under Reorder), the float32 tier, and an end-to-end LinBP
// propagation — writing BENCH_kernel.json when BENCH_KERNEL_OUT is set.
// Without the env var it runs a small smoke (correctness of the harness,
// not throughput): results are logged, never gated, because laptop and CI
// thermals are not comparable — the regression gate is benchdiff comparing
// two artifacts from the SAME runner.
func TestKernelThroughputArtifact(t *testing.T) {
	out := os.Getenv("BENCH_KERNEL_OUT")
	n, m := 30_000, 150_000
	if out != "" {
		n, m = 200_000, 1_000_000 // the ISSUE's acceptance graph
	}
	const k = 4
	g, _, err := Generate(GenerateConfig{N: n, M: m, K: k, H: SkewedH(k, 3), Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	c := g.Adj

	// Degree-reordered layout: what a Reorder-enabled engine serves from.
	newID := sparse.OrderBy(c, sparse.ReorderDegree)
	if newID == nil {
		t.Fatal("degree reorder returned identity on a planted graph")
	}
	cr := c.Permute(newID)

	x := dense.New(n, k)
	for i := 0; i < n; i++ {
		x.Data[i*k+i%k] = 1.0 / float64(k)
	}
	y := dense.New(n, k)
	x32, y32 := dense.New32(n, k), dense.New32(n, k)
	for i, v := range x.Data {
		x32.Data[i] = float32(v)
	}

	simpleSec := timeOp(func() { c.MulDenseIntoSimple(y, x) })
	blockedSec := timeOp(func() { cr.MulDenseInto(y, x) })
	f32Sec := timeOp(func() { cr.MulDenseInto32(y32, x32) })

	// Blocked dispatch must be bit-identical to the flat scan on the SAME
	// matrix — the harness-level restatement of the sparse package's
	// property test, cheap enough to assert on every run.
	y2 := dense.New(n, k)
	cr.MulDenseInto(y, x)
	cr.MulDenseIntoSimple(y2, x)
	for i := range y.Data {
		if y.Data[i] != y2.Data[i] {
			t.Fatalf("blocked and simple kernels differ at %d: %v vs %v", i, y.Data[i], y2.Data[i])
		}
	}

	propSec := timeOp(func() {
		if _, err := propagation.LinBP(cr, x, SkewedH(k, 3), propagation.LinBPOptions{Iterations: 10}); err != nil {
			t.Fatal(err)
		}
	})

	rep := kernelArtifact{
		Nodes:              n,
		Edges:              len(c.Indices) / 2,
		SpmmSimpleGBps:     spmmBytes(c, k, 8) / simpleSec / 1e9,
		SpmmBlockedGBps:    spmmBytes(cr, k, 8) / blockedSec / 1e9,
		SpmmF32GBps:        spmmBytes(cr, k, 4) / f32Sec / 1e9,
		PropagationSeconds: propSec,
	}
	rep.SpmmSpeedup = rep.SpmmBlockedGBps / rep.SpmmSimpleGBps
	t.Logf("n=%d m=%d: simple %.2f GB/s, blocked(reordered) %.2f GB/s (%.2fx), f32 %.2f GB/s, propagation %.3fs",
		rep.Nodes, rep.Edges, rep.SpmmSimpleGBps, rep.SpmmBlockedGBps, rep.SpmmSpeedup, rep.SpmmF32GBps, rep.PropagationSeconds)
	if rep.SpmmSpeedup < 1.3 {
		// Soft on shared runners; the hard gate is benchdiff trending
		// artifact pairs from identical hardware.
		t.Logf("note: blocked speedup %.2fx below the 1.3x acceptance target on this machine", rep.SpmmSpeedup)
	}

	if out == "" {
		return
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
