package factorgraph_test

import (
	"math/rand/v2"
	"testing"

	"factorgraph"
	"factorgraph/internal/core"
	"factorgraph/internal/datasets"
	"factorgraph/internal/graph"
	"factorgraph/internal/labels"
	"factorgraph/internal/metrics"
	"factorgraph/internal/propagation"
)

// TestReplicaPipelineAllEstimators is a cross-module integration test: on
// a MovieLens replica at moderate sparsity, every estimator must produce a
// valid doubly-stochastic H, and the distance-aware estimators must beat
// the myopic ones in the sparse regime (the paper's core claim).
func TestReplicaPipelineAllEstimators(t *testing.T) {
	ds, err := datasets.ByName("MovieLens")
	if err != nil {
		t.Fatal(err)
	}
	res, err := ds.Replica(8, 77)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.FromCSR(res.Graph.Adj)
	rng := rand.New(rand.NewPCG(77, 1))
	sparseSeeds, err := labels.SampleStratified(res.Labels, ds.K, 0.002, rng)
	if err != nil {
		t.Fatal(err)
	}

	type estFn func() (*factorgraph.Estimate, error)
	estimators := map[string]estFn{
		"DCEr": func() (*factorgraph.Estimate, error) { return factorgraph.EstimateDCEr(g, sparseSeeds, ds.K) },
		"DCE":  func() (*factorgraph.Estimate, error) { return factorgraph.EstimateDCE(g, sparseSeeds, ds.K) },
		"MCE":  func() (*factorgraph.Estimate, error) { return factorgraph.EstimateMCE(g, sparseSeeds, ds.K) },
		"LCE":  func() (*factorgraph.Estimate, error) { return factorgraph.EstimateLCE(g, sparseSeeds, ds.K) },
	}
	l2 := map[string]float64{}
	for name, fn := range estimators {
		est, err := fn()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !core.IsSymmetricDoublyStochastic(est.H, 1e-6) {
			t.Errorf("%s estimate violates constraints:\n%v", name, est.H)
		}
		l2[name] = metrics.L2(est.H, ds.H)
	}
	if l2["DCEr"] > l2["MCE"] {
		t.Errorf("DCEr (L2=%v) should beat MCE (L2=%v) at f=0.2%%", l2["DCEr"], l2["MCE"])
	}
	if l2["DCEr"] > 0.5 {
		t.Errorf("DCEr L2 %v too large at f=0.2%% on MovieLens replica", l2["DCEr"])
	}
}

// TestHeterophilyBaselineGap is the Figure 6i claim as an integration
// test: on a heterophilous synthetic graph, DCEr+LinBP must beat all three
// homophily baselines by a wide margin.
func TestHeterophilyBaselineGap(t *testing.T) {
	h := factorgraph.SkewedH(3, 8)
	g, truth, err := factorgraph.Generate(factorgraph.GenerateConfig{
		N: 4000, M: 40000, K: 3, H: h, Seed: 88,
	})
	if err != nil {
		t.Fatal(err)
	}
	seeds, err := factorgraph.SampleSeeds(truth, 3, 0.05, 88)
	if err != nil {
		t.Fatal(err)
	}
	pred, _, err := factorgraph.Classify(g, seeds, 3)
	if err != nil {
		t.Fatal(err)
	}
	dcerAcc := factorgraph.MacroAccuracy(pred, truth, seeds, 3)

	baselines := map[string]func() ([]int, error){
		"harmonic": func() ([]int, error) {
			return propagation.Harmonic(g.Adj, seeds, 3, propagation.HarmonicOptions{})
		},
		"mrw": func() ([]int, error) {
			return propagation.MultiRankWalk(g.Adj, seeds, 3, propagation.MRWOptions{})
		},
		"lgc": func() ([]int, error) {
			return propagation.LGC(g.Adj, seeds, 3, propagation.LGCOptions{})
		},
	}
	for name, fn := range baselines {
		basePred, err := fn()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		baseAcc := metrics.MacroAccuracy(basePred, truth, seeds, 3)
		if dcerAcc < baseAcc+0.15 {
			t.Errorf("DCEr (%.3f) should clearly beat homophily baseline %s (%.3f) under heterophily",
				dcerAcc, name, baseAcc)
		}
	}
}

// TestHomophilyAllMethodsAgree: on a homophilous graph every method —
// estimated-H LinBP and the homophily baselines — should do well; DCEr
// must not be worse than the baselines by more than a small margin
// (estimation costs nothing when homophily holds).
func TestHomophilyAllMethodsAgree(t *testing.T) {
	h := factorgraph.NewMatrix([][]float64{
		{0.8, 0.1, 0.1},
		{0.1, 0.8, 0.1},
		{0.1, 0.1, 0.8},
	})
	g, truth, err := factorgraph.Generate(factorgraph.GenerateConfig{
		N: 4000, M: 40000, K: 3, H: h, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	seeds, err := factorgraph.SampleSeeds(truth, 3, 0.05, 99)
	if err != nil {
		t.Fatal(err)
	}
	pred, _, err := factorgraph.Classify(g, seeds, 3)
	if err != nil {
		t.Fatal(err)
	}
	dcerAcc := factorgraph.MacroAccuracy(pred, truth, seeds, 3)
	mrwPred, err := propagation.MultiRankWalk(g.Adj, seeds, 3, propagation.MRWOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mrwAcc := metrics.MacroAccuracy(mrwPred, truth, seeds, 3)
	if dcerAcc < 0.8 {
		t.Errorf("DCEr accuracy %v on easy homophilous graph", dcerAcc)
	}
	if dcerAcc < mrwAcc-0.1 {
		t.Errorf("DCEr (%.3f) fell far behind MRW (%.3f) under homophily", dcerAcc, mrwAcc)
	}
}
