package factorgraph

import "factorgraph/internal/telemetry"

// Engine-level metric handles on the process registry. They complement the
// per-engine EngineStats counters: EngineStats is the per-instance view
// tests and the admin endpoint read, these are the process-wide series
// /metrics exports. Durations that happen under (or waiting for) the
// engine locks use MicroBuckets — they are expected to be micro-scale, and
// a fat tail here is exactly the lock-contention signal the sharding
// roadmap item needs.
var (
	engQueries = telemetry.Default().Counter("fg_engine_queries_total",
		"Classification queries answered.")
	engPropagations = telemetry.Default().Counter("fg_engine_propagations_total",
		"Full LinBP solves (snapshot rebuilds, residual Inits, what-if fallbacks).")
	engEstimations = telemetry.Default().Counter("fg_engine_estimations_total",
		"Compatibility estimations run.")
	engLabelPatches = telemetry.Default().Counter("fg_engine_label_patches_total",
		"Label-update batches applied.")
	engEdgeMutations = telemetry.Default().Counter("fg_engine_edge_mutations_total",
		"Streamed edge mutations applied (upserts + removals).")
	engSketchApplies = telemetry.Default().Counter("fg_engine_sketch_delta_applies_total",
		"Edge mutations folded incrementally into the cached DCEr sketches.")

	engWhatifHits = telemetry.Default().Counter("fg_engine_whatif_cache_total",
		"What-if overlay cache lookups.", telemetry.Labels{"result": "hit"})
	engWhatifMisses = telemetry.Default().Counter("fg_engine_whatif_cache_total",
		"What-if overlay cache lookups.", telemetry.Labels{"result": "miss"})

	hPropagation = telemetry.Default().Histogram("fg_engine_propagation_seconds",
		"Full LinBP solve duration.", nil)

	// Patch phases by kind: lock_wait is entry-to-write-lock (patchMu plus
	// mu, i.e. what a mutator waits behind), flush is the copy-on-write
	// drain outside the locks, apply is the re-lock plus row/pointer swap.
	hPatchLockWaitLabel = telemetry.Default().Histogram("fg_engine_patch_lock_wait_seconds",
		"Mutation entry-to-write-lock wait.", telemetry.MicroBuckets, telemetry.Labels{"kind": "label"})
	hPatchLockWaitTopo = telemetry.Default().Histogram("fg_engine_patch_lock_wait_seconds",
		"Mutation entry-to-write-lock wait.", telemetry.MicroBuckets, telemetry.Labels{"kind": "topology"})
	hPatchFlushLabel = telemetry.Default().Histogram("fg_engine_patch_flush_seconds",
		"Copy-on-write patch flush (no engine lock held).", nil, telemetry.Labels{"kind": "label"})
	hPatchFlushTopo = telemetry.Default().Histogram("fg_engine_patch_flush_seconds",
		"Copy-on-write patch flush (no engine lock held).", nil, telemetry.Labels{"kind": "topology"})
	hPatchApplyLabel = telemetry.Default().Histogram("fg_engine_patch_apply_seconds",
		"Patch apply: write-lock re-acquisition plus row/pointer swap.", telemetry.MicroBuckets, telemetry.Labels{"kind": "label"})
	hPatchApplyTopo = telemetry.Default().Histogram("fg_engine_patch_apply_seconds",
		"Patch apply: write-lock re-acquisition plus row/pointer swap.", telemetry.MicroBuckets, telemetry.Labels{"kind": "topology"})

	engCompactionsSync = telemetry.Default().Counter("fg_engine_compactions_total",
		"Delta-overlay compactions installed, by build mode.", telemetry.Labels{"mode": "sync"})
	engCompactionsAsync = telemetry.Default().Counter("fg_engine_compactions_total",
		"Delta-overlay compactions installed, by build mode.", telemetry.Labels{"mode": "async"})
	hCompactSync = telemetry.Default().Histogram("fg_engine_compaction_seconds",
		"Compaction duration (merge + rho(W) + install), by build mode.", nil, telemetry.Labels{"mode": "sync"})
	hCompactAsync = telemetry.Default().Histogram("fg_engine_compaction_seconds",
		"Compaction duration (merge + rho(W) + install), by build mode.", nil, telemetry.Labels{"mode": "async"})
	hEpochSwap = telemetry.Default().Histogram("fg_engine_epoch_swap_seconds",
		"Write-lock hold of a compaction epoch swap (installEpoch critical section).", telemetry.MicroBuckets)
)
