package factorgraph

import (
	"testing"
	"time"

	"factorgraph/internal/telemetry"
)

// newOverheadEngine builds a small warm engine and a query that stays on
// the hot serving path (snapshot resolved, no propagation per query).
func newOverheadEngine(tb testing.TB) (*Engine, Query) {
	tb.Helper()
	h := SkewedH(3, 8)
	g, truth, err := Generate(GenerateConfig{N: 2000, M: 10000, K: 3, H: h, Seed: 5})
	if err != nil {
		tb.Fatal(err)
	}
	seeds, err := SampleSeeds(truth, 3, 0.05, 5)
	if err != nil {
		tb.Fatal(err)
	}
	eng, err := NewEngine(g, seeds, 3)
	if err != nil {
		tb.Fatal(err)
	}
	nodes := make([]int, 64)
	for i := range nodes {
		nodes[i] = i * 7 % 2000
	}
	q := Query{Nodes: nodes, TopK: 2}
	// Warm: resolve the snapshot so the measured loop is pure serving.
	if err := eng.ClassifyEach(q, func(NodeResult) error { return nil }); err != nil {
		tb.Fatal(err)
	}
	return eng, q
}

// classifyNsPerOp times the warm classify path.
func classifyNsPerOp(eng *Engine, q Query) float64 {
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := eng.ClassifyEach(q, func(NodeResult) error { return nil }); err != nil {
				b.Fatal(err)
			}
		}
	})
	return float64(r.NsPerOp())
}

// gateOverhead gates the instrumentation cost of one hot path at ~2%.
// Shared-runner noise routinely exceeds that, so it first measures the
// telemetry-DISABLED path three times; if the spread exceeds 2% the
// machine cannot resolve the budget and the test skips rather than flake.
// The enabled run must stay within budget + observed noise, with one
// retry: background load arriving between the baseline and the enabled
// measurement shows up as a one-off spike that passes on re-measure,
// while a real instrumentation regression fails both attempts.
func gateOverhead(t *testing.T, measure func() float64) {
	t.Helper()
	defer telemetry.SetEnabled(true)

	telemetry.SetEnabled(false)
	off1, off2, off3 := measure(), measure(), measure()
	base := min(off1, off2, off3)
	noise := (max(off1, off2, off3) - base) / base
	if noise > 0.02 {
		t.Skipf("runner too noisy to gate 2%% (disabled runs differ by %.1f%%)", noise*100)
	}

	telemetry.SetEnabled(true)
	budget := 0.02 + noise
	on := measure()
	if on/base-1 > budget {
		on = measure()
	}
	if overhead := on/base - 1; overhead > budget {
		t.Errorf("telemetry overhead %.2f%% exceeds %.2f%% (off=%.0fns on=%.0fns)",
			overhead*100, budget*100, base, on)
	}
}

// TestTelemetryOverheadClassify gates the warm classify path.
func TestTelemetryOverheadClassify(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed test; skipped in -short")
	}
	eng, q := newOverheadEngine(t)
	gateOverhead(t, func() float64 { return classifyNsPerOp(eng, q) })
}

// TestTelemetryOverheadPatch applies the same gate to the label-patch path.
func TestTelemetryOverheadPatch(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed test; skipped in -short")
	}
	h := SkewedH(3, 8)
	g, truth, err := Generate(GenerateConfig{N: 2000, M: 10000, K: 3, H: h, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	seeds, err := SampleSeeds(truth, 3, 0.05, 5)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(g, seeds, 3, EngineOptions{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.ClassifyEach(Query{Nodes: []int{0}}, func(NodeResult) error { return nil }); err != nil {
		t.Fatal(err)
	}
	patchNsPerOp := func() float64 {
		i := 0
		r := testing.Benchmark(func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				if _, err := eng.UpdateLabelsMeta(map[int]int{100 + i%500: i % 3}, nil); err != nil {
					b.Fatal(err)
				}
				i++
			}
		})
		return float64(r.NsPerOp())
	}
	gateOverhead(t, patchNsPerOp)
}

// TestTelemetryOverheadTracingDisabled gates the tracing-disabled request
// end to end: the middleware prologue (traceparent parse + head-sampler
// decision) runs per op, but the sampler keeps nothing and no trace is
// threaded, so classify runs the nil-trace path — every instrumented span
// site pays exactly one nil check. This is the -trace-sample off (negative)
// deployment shape.
func TestTelemetryOverheadTracingDisabled(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed test; skipped in -short")
	}
	eng, q := newOverheadEngine(t)
	sampler := telemetry.NewSampler(0) // keep nothing: every head decision misses
	header := telemetry.Traceparent(telemetry.NewTraceID(), telemetry.NewSpanID(), false)
	measure := func() float64 {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				qq := q
				if tid, parent, ps, ok := telemetry.ParseTraceparent(header); ok && (ps || sampler.Sample(tid)) {
					qq.Trace = telemetry.NewRequestTrace(tid, parent, ps, true)
				}
				if err := eng.ClassifyEach(qq, func(NodeResult) error { return nil }); err != nil {
					b.Fatal(err)
				}
			}
		})
		return float64(r.NsPerOp())
	}
	gateOverhead(t, measure)
}

// TestTelemetryOverheadSamplerMiss gates the sampler-miss request: a live
// unsampled trace rides the query, so every instrumented span site records
// (the spans also feed the slow-query log), but nothing lands in the trace
// store. The disabled baseline gets the nil trace from NewRequestTrace, so
// the gate covers the full marginal cost of carrying an unsampled trace
// through the hot path.
func TestTelemetryOverheadSamplerMiss(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed test; skipped in -short")
	}
	eng, q := newOverheadEngine(t)
	measure := func() float64 {
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				qq := q
				// NewTraceID runs in both states so its cost cancels out of
				// the gate; NewRequestTrace is nil in the disabled baseline.
				qq.Trace = telemetry.NewRequestTrace(telemetry.NewTraceID(), telemetry.SpanID{}, false, false)
				if err := eng.ClassifyEach(qq, func(NodeResult) error { return nil }); err != nil {
					b.Fatal(err)
				}
			}
		})
		return float64(r.NsPerOp())
	}
	gateOverhead(t, measure)
}

// leafSum sums the durations of leaf spans only — spans no other span
// parents onto. Parent spans (engine.classify) contain their children's
// time, so a flat sum would double-count nested trees.
func leafSum(spans []telemetry.Span) time.Duration {
	hasChild := map[telemetry.SpanID]bool{}
	for _, sp := range spans {
		hasChild[sp.Parent] = true
	}
	var sum time.Duration
	for _, sp := range spans {
		if !hasChild[sp.ID] {
			sum += sp.Dur
		}
	}
	return sum
}

// TestDebugTraceConsistency cross-checks the debug stage trace against the
// query meta: the path the meta reports must match the stages recorded, and
// the leaf-span sum must not exceed wall time (parents contain their
// children, so only leaves are additive against the wall clock).
func TestDebugTraceConsistency(t *testing.T) {
	h := SkewedH(3, 8)
	g, truth, err := Generate(GenerateConfig{N: 500, M: 2500, K: 3, H: h, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	seeds, err := SampleSeeds(truth, 3, 0.1, 9)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(g, seeds, 3, EngineOptions{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}

	tr := telemetry.NewTrace()
	wall := time.Now()
	meta, err := eng.ClassifyEachMeta(Query{Nodes: []int{1, 2, 3}, TopK: 2, Trace: tr},
		func(NodeResult) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(wall)
	spans := tr.Spans()
	if len(spans) == 0 {
		t.Fatal("no stages recorded")
	}
	byName := map[string]time.Duration{}
	for _, sp := range spans {
		byName[sp.Name] = sp.Dur
	}
	if sum := leafSum(spans); sum > elapsed {
		t.Errorf("leaf-span sum %v exceeds wall time %v", sum, elapsed)
	}
	if _, ok := byName["emit"]; !ok {
		t.Errorf("stages %v missing emit", byName)
	}
	// The incremental engine answers plain queries from the live residual
	// state; the meta agrees with the recorded stage.
	if meta.Residual {
		if _, ok := byName["residual_direct"]; !ok {
			t.Errorf("meta.Residual set but stages are %v", byName)
		}
	}

	// A what-if query routes through the overlay; meta + stages must agree
	// on cache behavior.
	q := Query{Nodes: []int{1}, ExtraSeeds: map[int]int{4: 1}}
	q.Trace = telemetry.NewTrace()
	meta, err = eng.ClassifyEachMeta(q, func(NodeResult) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, sp := range q.Trace.Spans() {
		names[sp.Name] = true
	}
	if meta.Residual && !meta.CacheHit && !names["overlay_flush"] {
		t.Errorf("overlay miss, stages %v missing overlay_flush", names)
	}

	q.Trace = telemetry.NewTrace()
	meta, err = eng.ClassifyEachMeta(q, func(NodeResult) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	names = map[string]bool{}
	for _, sp := range q.Trace.Spans() {
		names[sp.Name] = true
	}
	if meta.CacheHit && !names["overlay_cached"] {
		t.Errorf("cache hit, stages %v missing overlay_cached", names)
	}
}
