package factorgraph

import (
	"math/rand/v2"

	"factorgraph/internal/labels"
)

// sampleStratified seeds a PCG RNG and defers to the labels package.
func sampleStratified(truth []int, k int, f float64, seed uint64) ([]int, error) {
	rng := rand.New(rand.NewPCG(seed, 0xb5297a4d3f84d5b5))
	return labels.SampleStratified(truth, k, f, rng)
}
